package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"garfield/internal/metrics"
)

func quick() Options { return Options{Quick: true, Seed: 9} }

func TestIDsStableAndDescribed(t *testing.T) {
	ids := IDs()
	if len(ids) != 34 {
		t.Fatalf("IDs = %d entries: %v", len(ids), ids)
	}
	for _, id := range ids {
		desc, err := Describe(id)
		if err != nil || desc == "" {
			t.Fatalf("Describe(%s) = %q, %v", id, desc, err)
		}
	}
	if _, err := Describe("nope"); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	var sb strings.Builder
	if err := Run("nope", quick(), &sb); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v", err)
	}
}

// TestRunAllQuick executes every registered experiment end to end in quick
// mode and sanity-checks that each renders non-empty output. This is the
// master integration test of the reproduction harness.
func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var sb strings.Builder
			if err := Run(id, quick(), &sb); err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			out := sb.String()
			if len(out) < 40 {
				t.Fatalf("Run(%s) output too small: %q", id, out)
			}
			if !strings.HasPrefix(out, "# ") {
				t.Fatalf("Run(%s) missing title: %q", id, out[:20])
			}
		})
	}
}

func TestTable1Contents(t *testing.T) {
	r, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MNIST_CNN", "VGG", "128807306", "491.4"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("Table1 missing %q:\n%s", want, sb.String())
		}
	}
}

// TestFig3aShape verifies the headline micro-benchmark shapes: Average is
// the cheapest rule and Median stays close to it, while Multi-Krum and
// Bulyan grow much faster with n.
func TestFig3aShape(t *testing.T) {
	r, err := Fig3a(quick())
	if err != nil {
		t.Fatal(err)
	}
	fig, ok := r.(*metrics.Figure)
	if !ok {
		t.Fatal("Fig3a did not return a figure")
	}
	avg := fig.SeriesByName("average")
	med := fig.SeriesByName("median")
	bul := fig.SeriesByName("bulyan")
	if avg == nil || med == nil || bul == nil {
		t.Fatal("missing series")
	}
	// At the largest n, Bulyan must cost much more than Average.
	if bul.Last() < 3*avg.Last() {
		t.Fatalf("bulyan (%v) not clearly above average (%v) at n=23", bul.Last(), avg.Last())
	}
	// Median must stay within a modest constant factor of Average (the
	// bound is loose: micro-timings shift under parallel test load).
	if med.Last() > 50*avg.Last() {
		t.Fatalf("median (%v) too far above average (%v)", med.Last(), avg.Last())
	}
}

// TestFig3bLinearInD verifies all GARs scale roughly linearly with d.
func TestFig3bLinearInD(t *testing.T) {
	if testing.Short() {
		t.Skip("high-dimension GAR timing; skipped in -short runs")
	}
	r, err := Fig3b(quick())
	if err != nil {
		t.Fatal(err)
	}
	fig, ok := r.(*metrics.Figure)
	if !ok {
		t.Fatal("not a figure")
	}
	for _, s := range fig.Series {
		n := len(s.Points)
		if n < 2 {
			t.Fatalf("series %s too short", s.Name)
		}
		first, last := s.Points[0], s.Points[n-1]
		dRatio := last.X / first.X
		tRatio := last.Y / first.Y
		// Linear in d means time ratio is within a loose factor of the
		// d ratio (loose: constant overheads dominate small d).
		if tRatio > 10*dRatio {
			t.Fatalf("%s superlinear in d: d x%.0f, time x%.0f", s.Name, dRatio, tRatio)
		}
	}
}

// TestFig5bShape verifies the attack experiment's headline result: under the
// reversed-vectors attack, vanilla fails while MSMW learns.
func TestFig5bShape(t *testing.T) {
	r, err := Fig5b(quick())
	if err != nil {
		t.Fatal(err)
	}
	fig, ok := r.(*metrics.Figure)
	if !ok {
		t.Fatal("not a figure")
	}
	vanilla := fig.SeriesByName("Vanilla")
	msmw := fig.SeriesByName("MSMW")
	if vanilla == nil || msmw == nil {
		t.Fatal("missing series")
	}
	if msmw.Last() < 0.6 {
		t.Fatalf("MSMW under attack accuracy = %v, want >= 0.6", msmw.Last())
	}
	if vanilla.Last() > msmw.Last()-0.2 {
		t.Fatalf("vanilla (%v) not clearly broken vs MSMW (%v)", vanilla.Last(), msmw.Last())
	}
}

// TestFig4aAllSystemsLearnWithoutAttack: without attacks every deployment
// reaches a usable accuracy, vanilla included.
func TestFig4aAllSystemsLearnWithoutAttack(t *testing.T) {
	r, err := Fig4a(quick())
	if err != nil {
		t.Fatal(err)
	}
	fig, ok := r.(*metrics.Figure)
	if !ok {
		t.Fatal("not a figure")
	}
	for _, s := range fig.Series {
		if s.Last() < 0.45 {
			t.Fatalf("series %s final accuracy = %v, want >= 0.45", s.Name, s.Last())
		}
	}
}

// TestExtMomentumImproves asserts the extension table shows momentum helping
// the median condition.
func TestExtMomentumImproves(t *testing.T) {
	r, err := ExtMomentum(quick())
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := r.(*metrics.Table)
	if !ok {
		t.Fatal("not a table")
	}
	var medianRow []string
	for _, row := range tab.Rows {
		if row[0] == "median" {
			medianRow = row
		}
	}
	if medianRow == nil {
		t.Fatal("missing median row")
	}
	var rawN, rawT, smN, smT int
	if _, err := fmt.Sscanf(medianRow[1], "%d/%d", &rawN, &rawT); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(medianRow[2], "%d/%d", &smN, &smT); err != nil {
		t.Fatal(err)
	}
	if smN <= rawN {
		t.Fatalf("momentum did not improve: %d vs %d", rawN, smN)
	}
}

// TestExtGARsAllRobust asserts every robust rule survives the reversed
// attack in the extension table.
func TestExtGARsAllRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	r, err := ExtGARs(quick())
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := r.(*metrics.Table)
	if !ok {
		t.Fatal("not a table")
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var acc float64
		if _, err := fmt.Sscan(row[1], &acc); err != nil {
			t.Fatal(err)
		}
		if acc < 0.6 {
			t.Fatalf("%s failed under attack: %v", row[0], acc)
		}
	}
}

// TestExtCompressAccuracyAndRobustness asserts the compression study's
// acceptance criteria: every codec's honest accuracy stays within tolerance
// of uncompressed fp64, the selection GARs (Krum/MDA/Bulyan) keep rejecting
// the collusion attacks under every codec, and the quantizing codecs
// actually shrink the reply stream (int8 by at least 4x).
func TestExtCompressAccuracyAndRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	r, err := ExtCompress(quick())
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := r.(*metrics.Table)
	if !ok {
		t.Fatal("not a table")
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want one per codec", len(tab.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
			t.Fatalf("cell %q: %v", s, err)
		}
		return v
	}
	var fp64Honest float64
	for i, row := range tab.Rows {
		codec := row[0]
		ratio := parse(row[2])
		honest := parse(row[4])
		if i == 0 {
			if codec != "fp64" {
				t.Fatalf("first row is %q, want the fp64 baseline", codec)
			}
			fp64Honest = honest
			if ratio < 0.99 || ratio > 1.01 {
				t.Fatalf("fp64 baseline ratio %.2f, want 1.0", ratio)
			}
		} else {
			if ratio < 2 {
				t.Errorf("%s reply ratio %.2fx, want >= 2x", codec, ratio)
			}
			if honest < fp64Honest-0.1 {
				t.Errorf("%s honest accuracy %.4f vs fp64 %.4f: outside tolerance", codec, honest, fp64Honest)
			}
		}
		if codec == "int8" && ratio < 4 {
			t.Errorf("int8 reply ratio %.2fx, want >= 4x", ratio)
		}
		// Attack columns: LIE vs MDA, fall-of-empires vs Krum, LIE vs
		// Bulyan. Rejection = the attacked run still converges.
		for col := 5; col <= 7; col++ {
			if acc := parse(row[col]); acc < 0.5 {
				t.Errorf("%s: attacked run (column %s) collapsed to %.4f — the GAR let the attack through",
					codec, tab.Header[col], acc)
			}
		}
	}
}

// TestExtAsyncSpeedup asserts the async-vs-sync comparison's headline: under
// a straggler, the bounded-staleness engine reaches at least 1.5x the
// lockstep updates/sec while converging to a comparable accuracy. Wall-clock
// ratios can be starved by concurrent test/compile load, so a transient miss
// is retried before failing.
func TestExtAsyncSpeedup(t *testing.T) {
	var speedup float64
	for attempt := 0; attempt < 3; attempt++ {
		r, err := ExtAsyncThroughput(quick())
		if err != nil {
			t.Fatal(err)
		}
		tab, ok := r.(*metrics.Table)
		if !ok {
			t.Fatal("not a table")
		}
		if len(tab.Rows) != 3 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		var syncAcc, asyncAcc float64
		if _, err := fmt.Sscan(tab.Rows[0][2], &syncAcc); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscan(tab.Rows[1][2], &asyncAcc); err != nil {
			t.Fatal(err)
		}
		if asyncAcc < syncAcc-0.1 {
			t.Fatalf("async accuracy %.4f too far below lockstep %.4f", asyncAcc, syncAcc)
		}
		if _, err := fmt.Sscanf(tab.Rows[2][1], "%fx", &speedup); err != nil {
			t.Fatal(err)
		}
		if speedup >= 1.5 {
			return
		}
		t.Logf("attempt %d: async speedup %.2fx; retrying", attempt, speedup)
	}
	t.Fatalf("async speedup = %.2fx after retries, want >= 1.5x", speedup)
}

// TestTable2Alignment checks the Table 2 reproduction emits rows with
// cos(phi) in [0, 1].
func TestTable2Alignment(t *testing.T) {
	r, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := r.(*metrics.Table)
	if !ok {
		t.Fatal("not a table")
	}
	if len(tab.Rows) == 0 {
		t.Fatal("Table 2 has no rows")
	}
	for _, row := range tab.Rows {
		var c float64
		if _, err := fmt.Sscan(row[1], &c); err != nil {
			t.Fatalf("bad cos value %q", row[1])
		}
		if c < 0 || c > 1 {
			t.Fatalf("cos(phi) = %v out of range", c)
		}
	}
}
