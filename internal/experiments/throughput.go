package experiments

import (
	"fmt"

	"garfield/internal/gar"
	"garfield/internal/metrics"
	"garfield/internal/model"
	"garfield/internal/simnet"
)

// The throughput experiments evaluate the deterministic cluster cost model
// (internal/simnet) over the paper's deployment shapes:
//
//	TF setup (Section 6.1): nw=18, fw=3, nps=6, fps=1, Bulyan.
//	PT setup (Section 6.1): nw=10, fw=3, nps=3, fps=1, Multi-Krum.

func tfDeployment(sys simnet.System, d int, cluster simnet.Profile) simnet.Deployment {
	return simnet.Deployment{
		Sys: sys, NW: 18, FW: 3, NPS: 6, FPS: 1,
		Rule: gar.NameBulyan, D: d, Cluster: cluster,
	}
}

func ptDeployment(sys simnet.System, d int, cluster simnet.Profile) simnet.Deployment {
	return simnet.Deployment{
		Sys: sys, NW: 10, FW: 3, NPS: 3, FPS: 1,
		Rule: gar.NameMultiKrum, D: d, Cluster: cluster,
	}
}

// slowdown returns sys's iteration time normalized to vanilla's in the same
// shape — the y axis of Figures 6 and 15.
func slowdown(base simnet.Deployment, sys simnet.System) (float64, error) {
	vs := base
	vs.Sys = simnet.SystemVanilla
	vb, err := vs.Iteration()
	if err != nil {
		return 0, err
	}
	ss := base
	ss.Sys = sys
	sb, err := ss.Iteration()
	if err != nil {
		return 0, err
	}
	return sb.TotalSec() / vb.TotalSec(), nil
}

// fig6 builds the slowdown-per-model table for one cluster profile.
func fig6(title string, cluster simnet.Profile) (Renderable, error) {
	systems := []simnet.System{
		simnet.SystemCrashTolerant, simnet.SystemSSMW,
		simnet.SystemMSMW, simnet.SystemDecentralized,
	}
	t := &metrics.Table{
		Title:  title,
		Header: []string{"Model", "Crash-tolerant", "SSMW", "MSMW", "Decentralized"},
	}
	for _, p := range model.Table1() {
		row := []string{p.Name}
		for _, sys := range systems {
			s, err := slowdown(tfDeployment(sys, p.Params, cluster), sys)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2fx", s))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig6a regenerates the CPU slowdown-per-model comparison.
func Fig6a(Options) (Renderable, error) {
	return fig6("Figure 6a: Slowdown vs vanilla baseline per model (CPU)", simnet.CPU())
}

// Fig6b regenerates the GPU slowdown-per-model comparison.
func Fig6b(Options) (Renderable, error) {
	return fig6("Figure 6b: Slowdown vs vanilla baseline per model (GPU)", simnet.GPU())
}

// Fig7 regenerates the CPU latency breakdown for ResNet-50.
func Fig7(Options) (Renderable, error) {
	resnet, err := model.ProfileByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:  "Figure 7: Per-iteration latency breakdown, ResNet-50, CPU cluster",
		Header: []string{"System", "Computation (s)", "Communication (s)", "Aggregation (s)", "Total (s)"},
	}
	for _, sys := range simnet.Systems() {
		if sys == simnet.SystemAggregaThor {
			continue // not part of Figure 7
		}
		b, err := tfDeployment(sys, resnet.Params, simnet.CPU()).Iteration()
		if err != nil {
			return nil, err
		}
		t.AddRow(sys.String(),
			fmt.Sprintf("%.2f", b.ComputeSec),
			fmt.Sprintf("%.2f", b.CommSec),
			fmt.Sprintf("%.2f", b.AggSec),
			fmt.Sprintf("%.2f", b.TotalSec()))
	}
	return t, nil
}

// Fig8a regenerates throughput-vs-nw on the CPU cluster (CifarNet, TF
// setup, including AggregaThor).
func Fig8a(Options) (Renderable, error) {
	cifar, err := model.ProfileByName("CifarNet")
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		Title:  "Figure 8a: Throughput vs number of workers (CifarNet, CPU)",
		XLabel: "nw",
		YLabel: "throughput (batches/sec)",
	}
	systems := []simnet.System{
		simnet.SystemVanilla, simnet.SystemCrashTolerant, simnet.SystemSSMW,
		simnet.SystemMSMW, simnet.SystemDecentralized, simnet.SystemAggregaThor,
	}
	for _, sys := range systems {
		s := fig.AddSeries(sys.String())
		for nw := 3; nw <= 20; nw++ {
			d := tfDeployment(sys, cifar.Params, simnet.CPU())
			d.NW = nw
			if fw := (nw - 3) / 4; fw < d.FW {
				d.FW = fw // keep the Bulyan requirement satisfiable
			}
			b, err := d.BatchesPerSec()
			if err != nil {
				return nil, err
			}
			s.Append(float64(nw), b)
		}
	}
	return fig, nil
}

// Fig8b regenerates throughput-vs-nw on the GPU cluster (ResNet-50, PT
// setup).
func Fig8b(Options) (Renderable, error) {
	resnet, err := model.ProfileByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		Title:  "Figure 8b: Throughput vs number of workers (ResNet-50, GPU)",
		XLabel: "nw",
		YLabel: "throughput (batches/sec)",
	}
	systems := []simnet.System{
		simnet.SystemVanilla, simnet.SystemCrashTolerant, simnet.SystemSSMW,
		simnet.SystemMSMW, simnet.SystemDecentralized,
	}
	for _, sys := range systems {
		s := fig.AddSeries(sys.String())
		for nw := 5; nw <= 13; nw += 2 {
			d := ptDeployment(sys, resnet.Params, simnet.GPU())
			d.NW = nw
			b, err := d.BatchesPerSec()
			if err != nil {
				return nil, err
			}
			s.Append(float64(nw), b)
		}
	}
	return fig, nil
}

// Fig9a regenerates decentralized-vs-vanilla communication time as the node
// count grows (d = 1e6, GPU cluster).
func Fig9a(Options) (Renderable, error) {
	fig := &metrics.Figure{
		Title:  "Figure 9a: Communication time vs number of nodes (d=1e6, GPU)",
		XLabel: "n",
		YLabel: "communication time (sec)",
	}
	for _, sys := range []simnet.System{simnet.SystemDecentralized, simnet.SystemVanilla} {
		s := fig.AddSeries(sys.String())
		for n := 2; n <= 6; n++ {
			d := ptDeployment(sys, 1_000_000, simnet.GPU())
			d.NW = n
			d.FW = 0
			c, err := d.CommTime()
			if err != nil {
				return nil, err
			}
			s.Append(float64(n), c)
		}
	}
	return fig, nil
}

// Fig9b regenerates communication time as the model dimension grows (n=6).
func Fig9b(Options) (Renderable, error) {
	fig := &metrics.Figure{
		Title:  "Figure 9b: Communication time vs model dimension (n=6, GPU)",
		XLabel: "d",
		YLabel: "communication time (sec)",
	}
	dims := []int{10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}
	for _, sys := range []simnet.System{simnet.SystemDecentralized, simnet.SystemVanilla} {
		s := fig.AddSeries(sys.String())
		for _, dim := range dims {
			d := ptDeployment(sys, dim, simnet.GPU())
			d.NW = 6
			d.FW = 0
			c, err := d.CommTime()
			if err != nil {
				return nil, err
			}
			s.Append(float64(dim), c)
		}
	}
	return fig, nil
}

// fwSweep evaluates MSMW throughput with growing fw at fixed nw.
func fwSweep(fig *metrics.Figure, name string, base simnet.Deployment) error {
	s := fig.AddSeries(name)
	for fw := 0; fw <= 3; fw++ {
		d := base
		d.FW = fw
		u, err := d.UpdatesPerSec()
		if err != nil {
			return err
		}
		s.Append(float64(fw), u)
	}
	return nil
}

// fpsSweep evaluates MSMW throughput with growing fps; the replica count
// follows the paper's resilience condition nps = 3*fps + 1.
func fpsSweep(fig *metrics.Figure, name string, base simnet.Deployment) error {
	s := fig.AddSeries(name)
	for fps := 0; fps <= 3; fps++ {
		d := base
		d.FPS = fps
		d.NPS = 3*fps + 1
		u, err := d.UpdatesPerSec()
		if err != nil {
			return err
		}
		s.Append(float64(fps), u)
	}
	return nil
}

// Fig10a regenerates throughput-vs-fw for both framework setups (CPU).
func Fig10a(Options) (Renderable, error) {
	resnet, err := model.ProfileByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		Title:  "Figure 10a: Throughput vs number of Byzantine workers (CPU)",
		XLabel: "fw",
		YLabel: "throughput (updates/sec)",
	}
	if err := fwSweep(fig, "PyTorch", ptDeployment(simnet.SystemMSMW, resnet.Params, simnet.CPU())); err != nil {
		return nil, err
	}
	if err := fwSweep(fig, "TensorFlow", tfDeployment(simnet.SystemMSMW, resnet.Params, simnet.CPU())); err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig10b regenerates throughput-vs-fps for both framework setups (CPU).
func Fig10b(Options) (Renderable, error) {
	resnet, err := model.ProfileByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		Title:  "Figure 10b: Throughput vs number of Byzantine servers (CPU)",
		XLabel: "fps",
		YLabel: "throughput (updates/sec)",
	}
	if err := fpsSweep(fig, "PyTorch", ptDeployment(simnet.SystemMSMW, resnet.Params, simnet.CPU())); err != nil {
		return nil, err
	}
	if err := fpsSweep(fig, "TensorFlow", tfDeployment(simnet.SystemMSMW, resnet.Params, simnet.CPU())); err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig13a / Fig13b regenerate the appendix throughput-vs-fw study for
// Garfield (MSMW) on each cluster.
func Fig13a(Options) (Renderable, error) { return fig13(simnet.CPU()) }

// Fig13b is the GPU variant of Fig13a.
func Fig13b(Options) (Renderable, error) { return fig13(simnet.GPU()) }

func fig13(cluster simnet.Profile) (Renderable, error) {
	resnet, err := model.ProfileByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		Title:  "Figure 13 (" + cluster.Name + "): Garfield throughput vs f_w",
		XLabel: "fw",
		YLabel: "throughput (updates/sec)",
	}
	if err := fwSweep(fig, "Garfield", tfDeployment(simnet.SystemMSMW, resnet.Params, cluster)); err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig14a / Fig14b regenerate the appendix throughput-vs-fps study.
func Fig14a(Options) (Renderable, error) { return fig14(simnet.CPU()) }

// Fig14b is the GPU variant of Fig14a.
func Fig14b(Options) (Renderable, error) { return fig14(simnet.GPU()) }

func fig14(cluster simnet.Profile) (Renderable, error) {
	resnet, err := model.ProfileByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		Title:  "Figure 14 (" + cluster.Name + "): Garfield throughput vs f_ps",
		XLabel: "fps",
		YLabel: "throughput (updates/sec)",
	}
	if err := fpsSweep(fig, "Garfield", tfDeployment(simnet.SystemMSMW, resnet.Params, cluster)); err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig15 regenerates the PyTorch-style slowdown-per-model table (GPU).
func Fig15(Options) (Renderable, error) {
	t := &metrics.Table{
		Title:  "Figure 15: Slowdown vs vanilla PyTorch-style baseline per model (GPU)",
		Header: []string{"Model", "Crash-tolerant", "Garfield (MSMW)"},
	}
	for _, p := range model.Table1() {
		crash, err := slowdown(ptDeployment(simnet.SystemCrashTolerant, p.Params, simnet.GPU()), simnet.SystemCrashTolerant)
		if err != nil {
			return nil, err
		}
		garf, err := slowdown(ptDeployment(simnet.SystemMSMW, p.Params, simnet.GPU()), simnet.SystemMSMW)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Name, fmt.Sprintf("%.2fx", crash), fmt.Sprintf("%.2fx", garf))
	}
	return t, nil
}

// Fig16 regenerates the PyTorch-style latency breakdown (GPU, pipelined
// communication and aggregation).
func Fig16(Options) (Renderable, error) {
	resnet, err := model.ProfileByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:  "Figure 16: Per-iteration latency breakdown, ResNet-50, GPU (pipelined)",
		Header: []string{"System", "Computation (s)", "Comm+Agg (s)", "Total (s)"},
	}
	for _, sys := range []simnet.System{simnet.SystemVanilla, simnet.SystemCrashTolerant, simnet.SystemMSMW} {
		b, err := ptDeployment(sys, resnet.Params, simnet.GPU()).Iteration()
		if err != nil {
			return nil, err
		}
		t.AddRow(sys.String(),
			fmt.Sprintf("%.3f", b.ComputeSec),
			fmt.Sprintf("%.3f", b.CommSec+b.AggSec),
			fmt.Sprintf("%.3f", b.TotalSec()))
	}
	return t, nil
}
