package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The wire format for a Vector is a little-endian uint32 length prefix
// followed by len IEEE-754 float64 values. This mirrors the paper's protobuf
// serialization of plain tensors (Section 4.1): a flat byte copy in and out
// of the runtime, whose cost is measurable and linear in d.

// MarshalBinary encodes v into a fresh byte slice.
func (v Vector) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 4+8*len(v))
	if err := v.EncodeTo(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// EncodedSize returns the number of bytes MarshalBinary will produce.
func (v Vector) EncodedSize() int { return 4 + 8*len(v) }

// EncodeTo writes the encoding of v into buf, which must be at least
// EncodedSize() bytes long. It allows callers to reuse buffers, a memory
// trick the paper highlights (Section 4.4).
func (v Vector) EncodeTo(buf []byte) error {
	if len(buf) < v.EncodedSize() {
		return fmt.Errorf("tensor: encode buffer too small: %d < %d", len(buf), v.EncodedSize())
	}
	binary.LittleEndian.PutUint32(buf, uint32(len(v)))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[4+8*i:], math.Float64bits(x))
	}
	return nil
}

// UnmarshalBinary decodes data (produced by MarshalBinary) into v,
// replacing its contents.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("tensor: truncated header: %d bytes", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if len(data) < 4+8*n {
		return fmt.Errorf("tensor: truncated payload: want %d values, have %d bytes", n, len(data)-4)
	}
	out := make(Vector, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[4+8*i:]))
	}
	*v = out
	return nil
}
