package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The wire format for a Vector is a little-endian uint32 length prefix
// followed by len IEEE-754 float64 values. This mirrors the paper's protobuf
// serialization of plain tensors (Section 4.1): a flat byte copy in and out
// of the runtime, whose cost is measurable and linear in d.
//
// Both directions move one 64-bit word per coordinate and are unrolled four
// words at a time; on little-endian targets each PutUint64/Uint64 compiles to
// a single load/store, so the loops below run at close to memory bandwidth.

// MarshalBinary encodes v into a fresh byte slice.
func (v Vector) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 4+8*len(v))
	if err := v.EncodeTo(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// EncodedSize returns the number of bytes MarshalBinary will produce.
func (v Vector) EncodedSize() int { return 4 + 8*len(v) }

// EncodeTo writes the encoding of v into buf, which must be at least
// EncodedSize() bytes long. It allows callers to reuse buffers, a memory
// trick the paper highlights (Section 4.4).
func (v Vector) EncodeTo(buf []byte) error {
	if len(buf) < v.EncodedSize() {
		return fmt.Errorf("tensor: encode buffer too small: %d < %d", len(buf), v.EncodedSize())
	}
	binary.LittleEndian.PutUint32(buf, uint32(len(v)))
	b := buf[4:]
	for len(v) >= 4 {
		w := b[:32] // one bounds check per 4 words
		binary.LittleEndian.PutUint64(w[0:], math.Float64bits(v[0]))
		binary.LittleEndian.PutUint64(w[8:], math.Float64bits(v[1]))
		binary.LittleEndian.PutUint64(w[16:], math.Float64bits(v[2]))
		binary.LittleEndian.PutUint64(w[24:], math.Float64bits(v[3]))
		v = v[4:]
		b = b[32:]
	}
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return nil
}

// UnmarshalBinary decodes data (produced by MarshalBinary) into v, replacing
// its contents. When the receiver already has sufficient capacity its backing
// array is reused, so steady-state decoding into a long-lived vector performs
// no allocation.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("tensor: truncated header: %d bytes", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if len(data) < 4+8*n {
		return fmt.Errorf("tensor: truncated payload: want %d values, have %d bytes", n, len(data)-4)
	}
	out := *v
	if cap(out) >= n {
		out = out[:n]
	} else {
		out = make(Vector, n)
	}
	src := data[4:]
	dst := out
	for len(dst) >= 4 {
		w := src[:32]
		dst[0] = math.Float64frombits(binary.LittleEndian.Uint64(w[0:]))
		dst[1] = math.Float64frombits(binary.LittleEndian.Uint64(w[8:]))
		dst[2] = math.Float64frombits(binary.LittleEndian.Uint64(w[16:]))
		dst[3] = math.Float64frombits(binary.LittleEndian.Uint64(w[24:]))
		dst = dst[4:]
		src = src[32:]
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	*v = out
	return nil
}
