package tensor

import "math"

// RNG is a small, deterministic, splittable pseudo-random generator
// (SplitMix64). Every stochastic component in the repository (datasets,
// initializers, attacks) derives its randomness from an RNG seeded
// explicitly, so that experiments are reproducible run-to-run.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from r; the derived stream does not
// overlap with r's future output for any practical sequence length.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box–Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormalVector returns a vector of dimension d with i.i.d. N(mu, sigma^2)
// coordinates.
func (r *RNG) NormalVector(d int, mu, sigma float64) Vector {
	out := make(Vector, d)
	for i := range out {
		out[i] = mu + sigma*r.Norm()
	}
	return out
}

// UniformVector returns a vector of dimension d with i.i.d. U[lo, hi)
// coordinates.
func (r *RNG) UniformVector(d int, lo, hi float64) Vector {
	out := make(Vector, d)
	span := hi - lo
	for i := range out {
		out[i] = lo + span*r.Float64()
	}
	return out
}
