// Package tensor provides the flat dense vector type that every other
// Garfield component operates on: model parameters, gradient estimates and
// aggregated results are all represented as a Vector (a []float64 of fixed
// dimension d), exactly matching the paper's GAR signature (R^d)^q -> R^d.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense d-dimensional float64 vector. The zero value is an empty
// vector. A Vector owns its backing storage: functions in this package never
// retain references to their arguments unless documented.
type Vector []float64

var (
	// ErrDimensionMismatch is returned when two vectors of different length
	// take part in an element-wise operation.
	ErrDimensionMismatch = errors.New("tensor: dimension mismatch")

	// ErrEmpty is returned when an operation requires at least one vector.
	ErrEmpty = errors.New("tensor: empty input")
)

// New returns a zero vector of dimension d.
func New(d int) Vector {
	return make(Vector, d)
}

// Filled returns a vector of dimension d with every coordinate set to v.
func Filled(d int, v float64) Vector {
	out := make(Vector, d)
	for i := range out {
		out[i] = v
	}
	return out
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports whether v and w have the same dimension and bit-identical
// coordinates (no tolerance; NaN != NaN as in IEEE comparison).
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Dim returns the dimension of the vector.
func (v Vector) Dim() int { return len(v) }

// CopyFrom overwrites v with the contents of src.
func (v Vector) CopyFrom(src Vector) error {
	if len(v) != len(src) {
		return fmt.Errorf("%w: dst %d, src %d", ErrDimensionMismatch, len(v), len(src))
	}
	copy(v, src)
	return nil
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// AddInPlace sets v = v + w.
func (v Vector) AddInPlace(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] += w[i]
	}
	return nil
}

// AXPY sets v = v + alpha*w (the BLAS axpy primitive used by SGD updates).
func (v Vector) AXPY(alpha float64, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
	return nil
}

// Scale returns alpha*v as a new vector.
func (v Vector) Scale(alpha float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = alpha * v[i]
	}
	return out
}

// ScaleInPlace sets v = alpha*v.
func (v Vector) ScaleInPlace(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product <v, w>.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for i := range v {
		s += v[i] * v[i]
	}
	return math.Sqrt(s)
}

// SquaredDistance returns ||v - w||^2 without allocating an intermediate.
func (v Vector) SquaredDistance(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s, nil
}

// Distance returns the Euclidean distance ||v - w||.
func (v Vector) Distance(w Vector) (float64, error) {
	s, err := v.SquaredDistance(w)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(s), nil
}

// CosineSimilarity returns cos(phi) between v and w, the quantity reported in
// the paper's Table 2. It returns 0 when either vector has zero norm.
func (v Vector) CosineSimilarity(w Vector) (float64, error) {
	dot, err := v.Dot(w)
	if err != nil {
		return 0, err
	}
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0, nil
	}
	return dot / (nv * nw), nil
}

// Mean returns the coordinate-wise average of the given vectors — the
// aggregation rule used by vanilla (non-resilient) deployments.
func Mean(vs []Vector) (Vector, error) {
	return MeanInto(nil, vs)
}

// MeanInto computes the coordinate-wise average of the given vectors into
// dst, reusing dst's backing array when its capacity suffices (dst may be nil
// or of any length). dst must not alias any input vector. The accumulation
// order is identical to Mean's, so the two produce bit-identical results.
func MeanInto(dst Vector, vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, ErrEmpty
	}
	d := len(vs[0])
	out := Resize(dst, d)
	for i := range out {
		out[i] = 0
	}
	for _, v := range vs {
		if len(v) != d {
			return nil, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, d, len(v))
		}
		for i := range v {
			out[i] += v[i]
		}
	}
	inv := 1 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// Resize returns a vector of dimension d backed by v's array when possible:
// v is truncated or extended in place if cap(v) >= d, and reallocated
// otherwise. Contents are unspecified; callers overwrite every coordinate.
func Resize(v Vector, d int) Vector {
	if cap(v) >= d {
		return v[:d]
	}
	return make(Vector, d)
}

// CheckSameDim validates that all vectors share one dimension and returns it.
func CheckSameDim(vs []Vector) (int, error) {
	if len(vs) == 0 {
		return 0, ErrEmpty
	}
	d := len(vs[0])
	for i, v := range vs {
		if len(v) != d {
			return 0, fmt.Errorf("%w: vector 0 has %d, vector %d has %d",
				ErrDimensionMismatch, d, i, len(v))
		}
	}
	return d, nil
}

// IsFinite reports whether every coordinate is a finite number. Byzantine
// inputs may contain NaN/Inf; honest pipelines use this as a sanity check.
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
