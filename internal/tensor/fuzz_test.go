package tensor

import (
	"math"
	"testing"
)

// FuzzVectorUnmarshal hardens the wire decoder against adversarial bytes:
// it must never panic or over-allocate, and any accepted payload must
// round-trip.
func FuzzVectorUnmarshal(f *testing.F) {
	good, _ := Vector{1, -2, math.Pi}.MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255}) // absurd length prefix
	f.Add(good[:5])
	f.Fuzz(func(t *testing.T, data []byte) {
		var v Vector
		if err := v.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var w Vector
		if err := w.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if len(w) != len(v) {
			t.Fatalf("length mismatch: %d vs %d", len(w), len(v))
		}
	})
}
