package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestNewAndFilled(t *testing.T) {
	v := New(5)
	if v.Dim() != 5 {
		t.Fatalf("Dim = %d, want 5", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("New not zeroed at %d: %v", i, x)
		}
	}
	w := Filled(3, 2.5)
	for i, x := range w {
		if x != 2.5 {
			t.Fatalf("Filled wrong at %d: %v", i, x)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	sum, err := v.Add(w)
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 5 || sum[1] != 7 || sum[2] != 9 {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := w.Sub(v)
	if err != nil {
		t.Fatal(err)
	}
	if diff[0] != 3 || diff[1] != 3 || diff[2] != 3 {
		t.Fatalf("Sub = %v", diff)
	}
}

func TestDimensionMismatch(t *testing.T) {
	v := Vector{1}
	w := Vector{1, 2}
	if _, err := v.Add(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("Add mismatch err = %v", err)
	}
	if _, err := v.Sub(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("Sub mismatch err = %v", err)
	}
	if _, err := v.Dot(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("Dot mismatch err = %v", err)
	}
	if err := v.AXPY(1, w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("AXPY mismatch err = %v", err)
	}
	if err := v.AddInPlace(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("AddInPlace mismatch err = %v", err)
	}
	if err := v.CopyFrom(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("CopyFrom mismatch err = %v", err)
	}
	if _, err := v.SquaredDistance(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("SquaredDistance mismatch err = %v", err)
	}
}

func TestAXPY(t *testing.T) {
	v := Vector{1, 1}
	if err := v.AXPY(-0.5, Vector{2, 4}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 0 || v[1] != -1 {
		t.Fatalf("AXPY = %v", v)
	}
}

func TestScale(t *testing.T) {
	v := Vector{1, -2}
	s := v.Scale(3)
	if s[0] != 3 || s[1] != -6 {
		t.Fatalf("Scale = %v", s)
	}
	if v[0] != 1 {
		t.Fatal("Scale mutated receiver")
	}
	v.ScaleInPlace(2)
	if v[0] != 2 || v[1] != -4 {
		t.Fatalf("ScaleInPlace = %v", v)
	}
}

func TestNormAndDistance(t *testing.T) {
	v := Vector{3, 4}
	if !almostEqual(v.Norm(), 5) {
		t.Fatalf("Norm = %v", v.Norm())
	}
	d, err := v.Distance(Vector{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 5) {
		t.Fatalf("Distance = %v", d)
	}
}

func TestCosineSimilarity(t *testing.T) {
	v := Vector{1, 0}
	tests := []struct {
		name string
		w    Vector
		want float64
	}{
		{"parallel", Vector{2, 0}, 1},
		{"orthogonal", Vector{0, 3}, 0},
		{"antiparallel", Vector{-1, 0}, -1},
		{"zero", Vector{0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := v.CosineSimilarity(tt.w)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want) {
				t.Fatalf("cos = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]Vector{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m[0], 3) || !almostEqual(m[1], 4) {
		t.Fatalf("Mean = %v", m)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean(nil) err = %v", err)
	}
	if _, err := Mean([]Vector{{1}, {1, 2}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("Mean mismatched err = %v", err)
	}
}

func TestCheckSameDim(t *testing.T) {
	d, err := CheckSameDim([]Vector{{1, 2}, {3, 4}})
	if err != nil || d != 2 {
		t.Fatalf("CheckSameDim = %d, %v", d, err)
	}
	if _, err := CheckSameDim(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := CheckSameDim([]Vector{{1}, {}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mismatch err = %v", err)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vector{1, 2}).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Fatal("NaN not detected")
	}
	if (Vector{math.Inf(1)}).IsFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	v := Vector{0, 1.5, -2.25, math.Pi, math.MaxFloat64}
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != v.EncodedSize() {
		t.Fatalf("size %d, want %d", len(data), v.EncodedSize())
	}
	var w Vector
	if err := w.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(w) != len(v) {
		t.Fatalf("len %d, want %d", len(w), len(v))
	}
	for i := range v {
		if v[i] != w[i] {
			t.Fatalf("coordinate %d: %v != %v", i, v[i], w[i])
		}
	}
}

func TestCodecTruncated(t *testing.T) {
	v := Vector{1, 2, 3}
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var w Vector
	if err := w.UnmarshalBinary(data[:2]); err == nil {
		t.Fatal("expected error on truncated header")
	}
	if err := w.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Fatal("expected error on truncated payload")
	}
}

func TestEncodeToSmallBuffer(t *testing.T) {
	v := Vector{1, 2}
	if err := v.EncodeTo(make([]byte, 3)); err == nil {
		t.Fatal("expected error on small buffer")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(xs []float64) bool {
		v := Vector(xs)
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var w Vector
		if err := w.UnmarshalBinary(data); err != nil {
			return false
		}
		if len(w) != len(v) {
			return false
		}
		for i := range v {
			// NaN != NaN, so compare bit patterns via both-NaN.
			if v[i] != w[i] && !(math.IsNaN(v[i]) && math.IsNaN(w[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %v", x)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(50)
	seen := make(map[int]bool, 50)
	for _, x := range p {
		if x < 0 || x >= 50 || seen[x] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[x] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if x := r.Intn(7); x < 0 || x >= 7 {
			t.Fatalf("Intn out of range: %d", x)
		}
	}
	if r.Intn(0) != 0 {
		t.Fatal("Intn(0) should return 0")
	}
}

func TestNormalVectorStats(t *testing.T) {
	r := NewRNG(9)
	v := r.NormalVector(100000, 2, 3)
	var sum float64
	for _, x := range v {
		sum += x
	}
	mean := sum / float64(len(v))
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("NormalVector mean = %v, want ~2", mean)
	}
}

func TestUniformVectorRange(t *testing.T) {
	r := NewRNG(10)
	v := r.UniformVector(10000, -1, 1)
	for _, x := range v {
		if x < -1 || x >= 1 {
			t.Fatalf("UniformVector out of range: %v", x)
		}
	}
}

func TestMeanPropertyBounds(t *testing.T) {
	// The mean of a set of identical vectors is that vector.
	f := func(raw []float64, k uint8) bool {
		if len(raw) == 0 {
			raw = []float64{1}
		}
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				raw[i] = 0
			}
		}
		n := int(k%5) + 1
		vs := make([]Vector, n)
		for i := range vs {
			vs[i] = Vector(raw).Clone()
		}
		m, err := Mean(vs)
		if err != nil {
			return false
		}
		for i := range m {
			if !almostEqual(m[i], raw[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanIntoMatchesMeanAndReuses(t *testing.T) {
	rng := NewRNG(9)
	vs := make([]Vector, 7)
	for i := range vs {
		vs[i] = rng.NormalVector(33, 0, 1)
	}
	want, err := Mean(vs)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(33)
	got, err := MeanInto(dst, vs)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[0] {
		t.Fatal("MeanInto did not reuse dst")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MeanInto[%d] = %v, Mean = %v", i, got[i], want[i])
		}
	}
	// Dirty destination contents must not leak into the result.
	for i := range dst {
		dst[i] = 1e18
	}
	got, err = MeanInto(dst, vs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dirty-dst MeanInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := MeanInto(nil, nil); err == nil {
		t.Fatal("MeanInto(nil, nil) should fail")
	}
}

func TestResize(t *testing.T) {
	v := make(Vector, 4, 16)
	if got := Resize(v, 10); &got[0] != &v[0] || len(got) != 10 {
		t.Fatalf("Resize within capacity reallocated: len=%d", len(got))
	}
	if got := Resize(v, 32); len(got) != 32 {
		t.Fatalf("Resize beyond capacity: len=%d", len(got))
	}
	if got := Resize(nil, 3); len(got) != 3 {
		t.Fatalf("Resize(nil): len=%d", len(got))
	}
}

func TestUnmarshalBinaryReusesReceiver(t *testing.T) {
	rng := NewRNG(4)
	v := rng.NormalVector(513, 0, 1) // odd length: exercises the unrolled tail
	buf, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	w := New(1024) // plenty of capacity
	backing := &w[:1][0]
	if err := w.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if len(w) != len(v) {
		t.Fatalf("decoded len %d, want %d", len(w), len(v))
	}
	if &w[0] != backing {
		t.Fatal("UnmarshalBinary reallocated despite sufficient capacity")
	}
	for i := range v {
		if w[i] != v[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	// Insufficient capacity must still grow.
	small := New(4)
	if err := small.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if len(small) != len(v) {
		t.Fatalf("grown decode len %d, want %d", len(small), len(v))
	}
}

func TestCodecSteadyStateZeroAlloc(t *testing.T) {
	rng := NewRNG(6)
	v := rng.NormalVector(10_001, 0, 1)
	buf := make([]byte, v.EncodedSize())
	var w Vector
	if err := w.UnmarshalBinary(mustEncode(t, v, buf)); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := v.EncodeTo(buf); err != nil {
			t.Fatal(err)
		}
		if err := w.UnmarshalBinary(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state codec round trip allocs/op = %v, want 0", allocs)
	}
}

func mustEncode(t *testing.T, v Vector, buf []byte) []byte {
	t.Helper()
	if err := v.EncodeTo(buf); err != nil {
		t.Fatal(err)
	}
	return buf
}
