// Package data provides the datasets Garfield experiments train on. The
// paper uses MNIST and CIFAR-10; neither is available offline, so this
// package generates deterministic synthetic stand-ins with the same shapes
// (28x28x1 and 32x32x3, 10 classes): a Gaussian mixture with one component
// per class. The substitution preserves what the experiments measure — the
// gradient variance structure across workers and convergence behaviour under
// attack — while remaining fully reproducible from a seed.
//
// The package also implements the two data distributions the paper's
// applications need: IID sharding for parameter-server setups and
// label-sorted (non-IID) sharding for decentralized learning.
package data

import (
	"errors"
	"fmt"

	"garfield/internal/tensor"
)

// Dataset is a labelled set of flattened examples.
type Dataset struct {
	// Features holds one flattened example per entry; all entries share
	// the same dimension.
	Features []tensor.Vector
	// Labels holds the class index of each example, in [0, Classes).
	Labels []int
	// Classes is the number of distinct classes.
	Classes int
	// Name identifies the generator ("synthetic-mnist", ...).
	Name string
}

// Batch is a view over a subset of a dataset used for one gradient estimate.
type Batch struct {
	Features []tensor.Vector
	Labels   []int
}

var (
	// ErrEmptyDataset is returned when an operation needs examples.
	ErrEmptyDataset = errors.New("data: empty dataset")

	// ErrBadSplit is returned for invalid partition parameters.
	ErrBadSplit = errors.New("data: invalid split")
)

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Features) }

// Dim returns the feature dimension, or 0 for an empty dataset.
func (d *Dataset) Dim() int {
	if len(d.Features) == 0 {
		return 0
	}
	return len(d.Features[0])
}

// Subset returns a dataset view over the given example indices. The returned
// dataset shares feature storage with d.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Features: make([]tensor.Vector, len(idx)),
		Labels:   make([]int, len(idx)),
		Classes:  d.Classes,
		Name:     d.Name,
	}
	for i, j := range idx {
		out.Features[i] = d.Features[j]
		out.Labels[i] = d.Labels[j]
	}
	return out
}

// Batch returns the examples at the given indices as a Batch (shared
// storage).
func (d *Dataset) Batch(idx []int) Batch {
	b := Batch{
		Features: make([]tensor.Vector, len(idx)),
		Labels:   make([]int, len(idx)),
	}
	for i, j := range idx {
		b.Features[i] = d.Features[j]
		b.Labels[i] = d.Labels[j]
	}
	return b
}

// SyntheticSpec parameterizes a synthetic Gaussian-mixture dataset.
type SyntheticSpec struct {
	// Name labels the dataset.
	Name string
	// Dim is the flattened feature dimension (e.g. 784 for 28x28x1).
	Dim int
	// Classes is the number of mixture components / labels.
	Classes int
	// Train and Test are the example counts for each split.
	Train, Test int
	// Separation scales the distance between class means; larger is
	// easier. Values near 1 give a task that is learnable but not trivial.
	Separation float64
	// Noise is the within-class standard deviation.
	Noise float64
	// Seed makes generation deterministic.
	Seed uint64
}

// MNISTSpec returns the stand-in for MNIST (28x28 grayscale, 10 classes) at
// the requested scale.
func MNISTSpec(train, test int, seed uint64) SyntheticSpec {
	return SyntheticSpec{
		Name: "synthetic-mnist", Dim: 28 * 28, Classes: 10,
		Train: train, Test: test, Separation: 1.0, Noise: 1.0, Seed: seed,
	}
}

// CIFAR10Spec returns the stand-in for CIFAR-10 (32x32 RGB, 10 classes) at
// the requested scale. The class structure is made slightly harder than the
// MNIST stand-in, mirroring the real datasets' relative difficulty.
func CIFAR10Spec(train, test int, seed uint64) SyntheticSpec {
	return SyntheticSpec{
		Name: "synthetic-cifar10", Dim: 32 * 32 * 3, Classes: 10,
		Train: train, Test: test, Separation: 0.7, Noise: 1.0, Seed: seed,
	}
}

// Generate materializes train and test splits from the spec.
func Generate(spec SyntheticSpec) (train, test *Dataset, err error) {
	if spec.Dim <= 0 || spec.Classes <= 0 || spec.Train <= 0 || spec.Test <= 0 {
		return nil, nil, fmt.Errorf("%w: %+v", ErrBadSplit, spec)
	}
	rng := tensor.NewRNG(spec.Seed)
	// Class means: random unit-ish directions scaled by Separation.
	means := make([]tensor.Vector, spec.Classes)
	for c := range means {
		means[c] = rng.NormalVector(spec.Dim, 0, spec.Separation)
	}
	gen := func(n int, r *tensor.RNG) *Dataset {
		d := &Dataset{
			Features: make([]tensor.Vector, n),
			Labels:   make([]int, n),
			Classes:  spec.Classes,
			Name:     spec.Name,
		}
		for i := 0; i < n; i++ {
			c := r.Intn(spec.Classes)
			x := means[c].Clone()
			for j := range x {
				x[j] += spec.Noise * r.Norm()
			}
			d.Features[i] = x
			d.Labels[i] = c
		}
		return d
	}
	return gen(spec.Train, rng.Split()), gen(spec.Test, rng.Split()), nil
}

// PartitionIID splits the dataset into n shards of near-equal size after a
// seeded shuffle — the distribution used by parameter-server deployments.
func PartitionIID(d *Dataset, n int, seed uint64) ([]*Dataset, error) {
	if n <= 0 || d.Len() < n {
		return nil, fmt.Errorf("%w: %d examples into %d shards", ErrBadSplit, d.Len(), n)
	}
	perm := tensor.NewRNG(seed).Perm(d.Len())
	return shard(d, perm, n), nil
}

// PartitionByLabel splits the dataset into n shards after sorting by label,
// so each shard sees only a narrow slice of the classes — the non-IID
// distribution motivating the decentralized application's contract step.
func PartitionByLabel(d *Dataset, n int) ([]*Dataset, error) {
	if n <= 0 || d.Len() < n {
		return nil, fmt.Errorf("%w: %d examples into %d shards", ErrBadSplit, d.Len(), n)
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	// Stable counting sort by label keeps generation order within a class.
	buckets := make([][]int, d.Classes)
	for _, i := range idx {
		l := d.Labels[i]
		buckets[l] = append(buckets[l], i)
	}
	sorted := idx[:0]
	for _, b := range buckets {
		sorted = append(sorted, b...)
	}
	return shard(d, sorted, n), nil
}

func shard(d *Dataset, order []int, n int) []*Dataset {
	shards := make([]*Dataset, n)
	size := len(order) / n
	rem := len(order) % n
	pos := 0
	for s := 0; s < n; s++ {
		sz := size
		if s < rem {
			sz++
		}
		shards[s] = d.Subset(order[pos : pos+sz])
		pos += sz
	}
	return shards
}

// Sampler draws deterministic mini-batches (with replacement across epochs,
// without replacement within an epoch) from one shard.
type Sampler struct {
	ds    *Dataset
	rng   *tensor.RNG
	order []int
	pos   int
}

// NewSampler returns a sampler over ds seeded with seed.
func NewSampler(ds *Dataset, seed uint64) (*Sampler, error) {
	if ds.Len() == 0 {
		return nil, ErrEmptyDataset
	}
	s := &Sampler{ds: ds, rng: tensor.NewRNG(seed)}
	s.reshuffle()
	return s, nil
}

func (s *Sampler) reshuffle() {
	s.order = s.rng.Perm(s.ds.Len())
	s.pos = 0
}

// Next returns the next mini-batch of the requested size, reshuffling at
// epoch boundaries. Batches never span an epoch boundary; a short tail batch
// is returned instead.
func (s *Sampler) Next(batchSize int) Batch {
	if batchSize <= 0 {
		batchSize = 1
	}
	if s.pos >= len(s.order) {
		s.reshuffle()
	}
	end := s.pos + batchSize
	if end > len(s.order) {
		end = len(s.order)
	}
	b := s.ds.Batch(s.order[s.pos:end])
	s.pos = end
	return b
}
