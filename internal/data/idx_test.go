package data

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// buildIDXImages serializes images in the exact MNIST IDX3 binary format.
func buildIDXImages(t *testing.T, imgs [][]byte, rows, cols int) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, idxTypeUint8, 3})
	for _, d := range []uint32{uint32(len(imgs)), uint32(rows), uint32(cols)} {
		if err := binary.Write(&buf, binary.BigEndian, d); err != nil {
			t.Fatal(err)
		}
	}
	for _, img := range imgs {
		buf.Write(img)
	}
	return buf.Bytes()
}

// buildIDXLabels serializes labels in the IDX1 binary format.
func buildIDXLabels(t *testing.T, labels []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, idxTypeUint8, 1})
	if err := binary.Write(&buf, binary.BigEndian, uint32(len(labels))); err != nil {
		t.Fatal(err)
	}
	buf.Write(labels)
	return buf.Bytes()
}

func TestLoadMNISTRoundTrip(t *testing.T) {
	img0 := make([]byte, 4) // 2x2 "images"
	img1 := []byte{0, 128, 255, 64}
	images := buildIDXImages(t, [][]byte{img0, img1}, 2, 2)
	labels := buildIDXLabels(t, []byte{3, 7})

	d, err := LoadMNIST(bytes.NewReader(images), bytes.NewReader(labels))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Classes != 10 || d.Dim() != 4 {
		t.Fatalf("dataset = %d examples, %d classes, dim %d", d.Len(), d.Classes, d.Dim())
	}
	if d.Labels[0] != 3 || d.Labels[1] != 7 {
		t.Fatalf("labels = %v", d.Labels)
	}
	if d.Features[1][2] != 255.0/256.0 {
		t.Fatalf("pixel normalization: %v", d.Features[1][2])
	}
	if d.Features[0][0] != 0 {
		t.Fatalf("zero pixel: %v", d.Features[0][0])
	}
}

func TestReadIDXImagesBadMagic(t *testing.T) {
	data := buildIDXImages(t, [][]byte{{0}}, 1, 1)
	data[3] = 9 // corrupt dimensionality byte
	if _, _, _, err := ReadIDXImages(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadIDXImagesTruncated(t *testing.T) {
	data := buildIDXImages(t, [][]byte{make([]byte, 4), make([]byte, 4)}, 2, 2)
	if _, _, _, err := ReadIDXImages(bytes.NewReader(data[:len(data)-2])); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadIDXLabelsBadMagic(t *testing.T) {
	data := buildIDXLabels(t, []byte{1})
	data[3] = 3
	if _, err := ReadIDXLabels(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadMNISTCountMismatch(t *testing.T) {
	images := buildIDXImages(t, [][]byte{make([]byte, 4)}, 2, 2)
	labels := buildIDXLabels(t, []byte{1, 2})
	if _, err := LoadMNIST(bytes.NewReader(images), bytes.NewReader(labels)); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadMNISTLabelOutOfRange(t *testing.T) {
	images := buildIDXImages(t, [][]byte{make([]byte, 4)}, 2, 2)
	labels := buildIDXLabels(t, []byte{11})
	if _, err := LoadMNIST(bytes.NewReader(images), bytes.NewReader(labels)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v", err)
	}
}

// buildCIFARRecord serializes one CIFAR-10 binary record.
func buildCIFARRecord(label byte, fill byte) []byte {
	rec := make([]byte, cifarRecordSize)
	rec[0] = label
	for i := 1; i < len(rec); i++ {
		rec[i] = fill
	}
	return rec
}

func TestLoadCIFAR10(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(buildCIFARRecord(2, 128))
	buf.Write(buildCIFARRecord(9, 0))

	d, err := LoadCIFAR10(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Dim() != 3072 || d.Classes != 10 {
		t.Fatalf("dataset = %d examples, dim %d", d.Len(), d.Dim())
	}
	if d.Labels[0] != 2 || d.Labels[1] != 9 {
		t.Fatalf("labels = %v", d.Labels)
	}
	if d.Features[0][0] != 0.5 { // 128/256
		t.Fatalf("pixel = %v", d.Features[0][0])
	}
}

func TestLoadCIFAR10ChannelInterleaving(t *testing.T) {
	rec := make([]byte, cifarRecordSize)
	rec[0] = 1
	rec[1] = 10      // R of pixel 0
	rec[1+1024] = 20 // G of pixel 0
	rec[1+2048] = 30 // B of pixel 0
	rec[1+1] = 40    // R of pixel 1
	d, err := LoadCIFAR10(bytes.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	f := d.Features[0]
	if f[0] != 10.0/256 || f[1] != 20.0/256 || f[2] != 30.0/256 || f[3] != 40.0/256 {
		t.Fatalf("interleaving wrong: %v", f[:4])
	}
}

func TestLoadCIFAR10Truncated(t *testing.T) {
	rec := buildCIFARRecord(1, 1)
	if _, err := LoadCIFAR10(bytes.NewReader(rec[:100])); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadCIFAR10Empty(t *testing.T) {
	if _, err := LoadCIFAR10(bytes.NewReader(nil)); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadCIFAR10BadLabel(t *testing.T) {
	if _, err := LoadCIFAR10(bytes.NewReader(buildCIFARRecord(77, 0))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v", err)
	}
}

// TestLoadedMNISTTrainsWithCNN wires a synthetic IDX-encoded dataset through
// the loader into the CNN, closing the loop real MNIST files would follow.
func TestLoadedMNISTFeedsPartitioning(t *testing.T) {
	const n = 40
	imgs := make([][]byte, n)
	labels := make([]byte, n)
	for i := range imgs {
		img := make([]byte, 16) // 4x4
		img[i%16] = 255
		imgs[i] = img
		labels[i] = byte(i % 10)
	}
	d, err := LoadMNIST(
		bytes.NewReader(buildIDXImages(t, imgs, 4, 4)),
		bytes.NewReader(buildIDXLabels(t, labels)))
	if err != nil {
		t.Fatal(err)
	}
	shards, err := PartitionIID(d, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != n {
		t.Fatalf("shards cover %d of %d", total, n)
	}
}
