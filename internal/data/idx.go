package data

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file implements loaders for the on-disk formats of the paper's real
// datasets: the IDX format of MNIST (images + labels) and the CIFAR-10
// binary format. The repository trains on synthetic stand-ins by default
// (no network access), but a user with the real files can load them through
// these parsers and run every experiment unchanged.

// IDX magic type codes (third magic byte).
const (
	idxTypeUint8 = 0x08
)

var (
	// ErrBadFormat is returned for malformed dataset files.
	ErrBadFormat = errors.New("data: malformed dataset file")

	// ErrMismatch is returned when image and label files disagree.
	ErrMismatch = errors.New("data: image/label count mismatch")
)

// ReadIDXImages parses an MNIST-style IDX3 image file (magic 0x00000803):
// count x rows x cols uint8 pixels, normalized to [0, 1) feature vectors.
func ReadIDXImages(r io.Reader) (features [][]float64, rows, cols int, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("%w: magic: %v", ErrBadFormat, err)
	}
	if magic[0] != 0 || magic[1] != 0 || magic[2] != idxTypeUint8 || magic[3] != 3 {
		return nil, 0, 0, fmt.Errorf("%w: IDX3 magic %x", ErrBadFormat, magic)
	}
	dims := make([]uint32, 3)
	for i := range dims {
		if err := binary.Read(r, binary.BigEndian, &dims[i]); err != nil {
			return nil, 0, 0, fmt.Errorf("%w: dims: %v", ErrBadFormat, err)
		}
	}
	count, rows, cols := int(dims[0]), int(dims[1]), int(dims[2])
	if rows <= 0 || cols <= 0 || count < 0 {
		return nil, 0, 0, fmt.Errorf("%w: dims %dx%dx%d", ErrBadFormat, count, rows, cols)
	}
	px := rows * cols
	buf := make([]byte, px)
	features = make([][]float64, count)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, 0, 0, fmt.Errorf("%w: image %d: %v", ErrBadFormat, i, err)
		}
		f := make([]float64, px)
		for j, b := range buf {
			f[j] = float64(b) / 256.0
		}
		features[i] = f
	}
	return features, rows, cols, nil
}

// ReadIDXLabels parses an MNIST-style IDX1 label file (magic 0x00000801).
func ReadIDXLabels(r io.Reader) ([]int, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadFormat, err)
	}
	if magic[0] != 0 || magic[1] != 0 || magic[2] != idxTypeUint8 || magic[3] != 1 {
		return nil, fmt.Errorf("%w: IDX1 magic %x", ErrBadFormat, magic)
	}
	var count uint32
	if err := binary.Read(r, binary.BigEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFormat, err)
	}
	buf := make([]byte, count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: labels: %v", ErrBadFormat, err)
	}
	labels := make([]int, count)
	for i, b := range buf {
		labels[i] = int(b)
	}
	return labels, nil
}

// LoadMNIST combines an IDX3 image stream and an IDX1 label stream into a
// Dataset with 10 classes.
func LoadMNIST(images, labels io.Reader) (*Dataset, error) {
	feats, _, _, err := ReadIDXImages(images)
	if err != nil {
		return nil, err
	}
	labs, err := ReadIDXLabels(labels)
	if err != nil {
		return nil, err
	}
	if len(feats) != len(labs) {
		return nil, fmt.Errorf("%w: %d images, %d labels", ErrMismatch, len(feats), len(labs))
	}
	for _, l := range labs {
		if l < 0 || l > 9 {
			return nil, fmt.Errorf("%w: label %d out of range", ErrBadFormat, l)
		}
	}
	d := &Dataset{Labels: labs, Classes: 10, Name: "mnist"}
	for _, f := range feats {
		d.Features = append(d.Features, f)
	}
	return d, nil
}

// cifarRecordSize is one CIFAR-10 binary record: 1 label byte + 3072 pixels
// (32x32x3, channel-planar).
const cifarRecordSize = 1 + 3072

// LoadCIFAR10 parses one or more concatenated CIFAR-10 binary batch streams
// (data_batch_*.bin format): records of [label u8][1024 R][1024 G][1024 B].
// Pixels are normalized to [0, 1) and re-interleaved to HWC order to match
// the CNN input layout.
func LoadCIFAR10(r io.Reader) (*Dataset, error) {
	d := &Dataset{Classes: 10, Name: "cifar10"}
	rec := make([]byte, cifarRecordSize)
	for {
		_, err := io.ReadFull(r, rec)
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: truncated CIFAR record", ErrBadFormat)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		label := int(rec[0])
		if label > 9 {
			return nil, fmt.Errorf("%w: label %d out of range", ErrBadFormat, label)
		}
		f := make([]float64, 3072)
		// Planar RRR...GGG...BBB -> interleaved RGBRGB... (HWC).
		for p := 0; p < 1024; p++ {
			f[p*3+0] = float64(rec[1+p]) / 256.0
			f[p*3+1] = float64(rec[1+1024+p]) / 256.0
			f[p*3+2] = float64(rec[1+2048+p]) / 256.0
		}
		d.Features = append(d.Features, f)
		d.Labels = append(d.Labels, label)
	}
	if d.Len() == 0 {
		return nil, ErrEmptyDataset
	}
	return d, nil
}
