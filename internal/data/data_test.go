package data

import (
	"errors"
	"testing"

	"garfield/internal/tensor"
)

func smallSpec() SyntheticSpec {
	return SyntheticSpec{
		Name: "t", Dim: 16, Classes: 4, Train: 200, Test: 50,
		Separation: 1, Noise: 0.5, Seed: 1,
	}
}

func TestGenerateShapes(t *testing.T) {
	train, test, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 200 || test.Len() != 50 {
		t.Fatalf("sizes = %d, %d", train.Len(), test.Len())
	}
	if train.Dim() != 16 {
		t.Fatalf("dim = %d", train.Dim())
	}
	for _, l := range train.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label out of range: %d", l)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Features {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.Features[i] {
			if a.Features[i][j] != b.Features[i][j] {
				t.Fatal("features differ across identical seeds")
			}
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	spec := smallSpec()
	a, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 2
	b, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a.Features[0] {
		if a.Features[0][j] != b.Features[0][j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical first example")
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	bad := smallSpec()
	bad.Train = 0
	if _, _, err := Generate(bad); !errors.Is(err, ErrBadSplit) {
		t.Fatalf("err = %v, want ErrBadSplit", err)
	}
}

func TestMNISTAndCIFARSpecs(t *testing.T) {
	m := MNISTSpec(10, 5, 3)
	if m.Dim != 784 || m.Classes != 10 {
		t.Fatalf("MNIST spec = %+v", m)
	}
	c := CIFAR10Spec(10, 5, 3)
	if c.Dim != 3072 || c.Classes != 10 {
		t.Fatalf("CIFAR spec = %+v", c)
	}
}

func TestPartitionIID(t *testing.T) {
	train, _, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	shards, err := PartitionIID(train, 7, 9)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
		if s.Len() < train.Len()/7 {
			t.Fatalf("shard too small: %d", s.Len())
		}
	}
	if total != train.Len() {
		t.Fatalf("shards cover %d of %d", total, train.Len())
	}
}

func TestPartitionIIDBalancedLabels(t *testing.T) {
	train, _, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	shards, err := PartitionIID(train, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Each IID shard should see most classes.
	for i, s := range shards {
		seen := map[int]bool{}
		for _, l := range s.Labels {
			seen[l] = true
		}
		if len(seen) < 3 {
			t.Fatalf("shard %d sees only %d classes", i, len(seen))
		}
	}
}

func TestPartitionByLabelIsSkewed(t *testing.T) {
	train, _, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	shards, err := PartitionByLabel(train, 4)
	if err != nil {
		t.Fatal(err)
	}
	// With 4 classes and 4 label-sorted shards, each shard must be
	// dominated by a single class (boundary shards may catch the tail of a
	// neighbouring class, but the majority is one label).
	for i, s := range shards {
		seen := map[int]int{}
		for _, l := range s.Labels {
			seen[l]++
		}
		top := 0
		for _, c := range seen {
			if c > top {
				top = c
			}
		}
		if top*2 < s.Len() {
			t.Fatalf("label shard %d has no majority class: %v", i, seen)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	train, _, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionIID(train, 0, 1); !errors.Is(err, ErrBadSplit) {
		t.Fatalf("err = %v", err)
	}
	if _, err := PartitionIID(train, train.Len()+1, 1); !errors.Is(err, ErrBadSplit) {
		t.Fatalf("err = %v", err)
	}
	if _, err := PartitionByLabel(train, 0); !errors.Is(err, ErrBadSplit) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubsetSharesStorage(t *testing.T) {
	train, _, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	sub := train.Subset([]int{0, 1})
	if &sub.Features[0][0] != &train.Features[0][0] {
		t.Fatal("Subset copied feature storage")
	}
}

func TestSamplerCoversEpoch(t *testing.T) {
	train, _, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*float64]bool{}
	count := 0
	for count < train.Len() {
		b := s.Next(32)
		for _, f := range b.Features {
			seen[&f[0]] = true
		}
		count += len(b.Labels)
	}
	if len(seen) != train.Len() {
		t.Fatalf("one epoch visited %d of %d examples", len(seen), train.Len())
	}
}

func TestSamplerReshuffles(t *testing.T) {
	train, _, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Drain two epochs; must not panic and must keep returning batches.
	for i := 0; i < 2*train.Len()/16+2; i++ {
		b := s.Next(16)
		if len(b.Labels) == 0 {
			t.Fatal("empty batch")
		}
	}
}

func TestSamplerEmptyDataset(t *testing.T) {
	if _, err := NewSampler(&Dataset{}, 1); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("err = %v, want ErrEmptyDataset", err)
	}
}

func TestSamplerBatchSizeClamp(t *testing.T) {
	train, _, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Next(0)
	if len(b.Labels) != 1 {
		t.Fatalf("Next(0) batch size = %d, want 1", len(b.Labels))
	}
}

func TestBatchView(t *testing.T) {
	d := &Dataset{
		Features: []tensor.Vector{{1}, {2}, {3}},
		Labels:   []int{0, 1, 0},
		Classes:  2,
	}
	b := d.Batch([]int{2, 0})
	if b.Features[0][0] != 3 || b.Labels[1] != 0 {
		t.Fatalf("Batch = %+v", b)
	}
}
