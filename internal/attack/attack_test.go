package attack

import (
	"errors"
	"testing"

	"garfield/internal/tensor"
)

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name, tensor.NewRNG(1))
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("Name = %q, want %q", a.Name(), name)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("zzz", nil); !errors.Is(err, ErrUnknownAttack) {
		t.Fatalf("err = %v, want ErrUnknownAttack", err)
	}
}

func TestNonePassesThrough(t *testing.T) {
	v := tensor.Vector{1, 2, 3}
	out, ok := None{}.Apply(v, nil)
	if !ok {
		t.Fatal("None dropped the vector")
	}
	if &out[0] != &v[0] {
		t.Fatal("None should pass the vector through unchanged")
	}
}

func TestRandomReplacesPayload(t *testing.T) {
	a := NewRandom(tensor.NewRNG(7), 1.0)
	v := tensor.Filled(100, 5)
	out, ok := a.Apply(v, nil)
	if !ok {
		t.Fatal("Random dropped")
	}
	if len(out) != 100 {
		t.Fatalf("dim = %d", len(out))
	}
	same := 0
	for i := range out {
		if out[i] == v[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("Random kept %d honest coordinates", same)
	}
}

func TestRandomNilRNG(t *testing.T) {
	a := NewRandom(nil, 1.0)
	if _, ok := a.Apply(tensor.Filled(3, 1), nil); !ok {
		t.Fatal("Random with nil rng dropped")
	}
}

func TestReversedAmplifies(t *testing.T) {
	a := Reversed{Factor: -100}
	out, ok := a.Apply(tensor.Vector{1, -2}, nil)
	if !ok {
		t.Fatal("Reversed dropped")
	}
	if out[0] != -100 || out[1] != 200 {
		t.Fatalf("Reversed = %v", out)
	}
}

func TestDropOmits(t *testing.T) {
	if _, ok := (Drop{}).Apply(tensor.Vector{1}, nil); ok {
		t.Fatal("Drop delivered a vector")
	}
}

func TestLittleIsEnoughStaysNearMean(t *testing.T) {
	peers := []tensor.Vector{
		{1.0, 2.0}, {1.2, 2.2}, {0.8, 1.8},
	}
	a := LittleIsEnough{Z: 1.0}
	out, ok := a.Apply(tensor.Vector{1, 2}, peers)
	if !ok {
		t.Fatal("LIE dropped")
	}
	// mean = (1, 2); std ~ (0.163, 0.163); output = mean - z*std must be
	// below the mean but well within the honest spread's magnitude.
	if out[0] >= 1.0 || out[0] < 0.5 {
		t.Fatalf("LIE coordinate 0 = %v", out[0])
	}
}

func TestLittleIsEnoughNoPeersFallsBack(t *testing.T) {
	a := LittleIsEnough{Z: 1.0}
	out, ok := a.Apply(tensor.Vector{2, -4}, nil)
	if !ok {
		t.Fatal("LIE dropped")
	}
	if out[0] != -2 || out[1] != 4 {
		t.Fatalf("LIE fallback = %v, want reversed", out)
	}
}

func TestFallOfEmpiresNegatesMean(t *testing.T) {
	peers := []tensor.Vector{{2, 4}, {4, 8}}
	a := FallOfEmpires{Epsilon: 1.0}
	out, ok := a.Apply(tensor.Vector{0, 0}, peers)
	if !ok {
		t.Fatal("FoE dropped")
	}
	if out[0] != -3 || out[1] != -6 {
		t.Fatalf("FoE = %v, want [-3 -6]", out)
	}
}

func TestFallOfEmpiresNoPeersFallsBack(t *testing.T) {
	a := FallOfEmpires{Epsilon: 2.0}
	out, ok := a.Apply(tensor.Vector{1}, nil)
	if !ok {
		t.Fatal("FoE dropped")
	}
	if out[0] != -2 {
		t.Fatalf("FoE fallback = %v", out)
	}
}

func TestStaleReplaysFirstPayload(t *testing.T) {
	s := &Stale{}
	first, ok := s.Apply(tensor.Vector{1, 2}, nil)
	if !ok {
		t.Fatal("stale dropped")
	}
	if first[0] != 1 || first[1] != 2 {
		t.Fatalf("first reply = %v", first)
	}
	second, ok := s.Apply(tensor.Vector{9, 9}, nil)
	if !ok {
		t.Fatal("stale dropped")
	}
	if second[0] != 1 || second[1] != 2 {
		t.Fatalf("stale did not replay: %v", second)
	}
	// Replies must not alias internal state.
	second[0] = 77
	third, _ := s.Apply(tensor.Vector{0, 0}, nil)
	if third[0] != 1 {
		t.Fatal("stale state mutated through returned slice")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std, err := meanStd([]tensor.Vector{{0}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] != 1 || std[0] != 1 {
		t.Fatalf("meanStd = %v, %v", mean, std)
	}
	if _, _, err := meanStd(nil); err == nil {
		t.Fatal("meanStd(nil) should error")
	}
}
