package attack

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"garfield/internal/tensor"
)

// Attack corrupts the payload a Byzantine node sends in one round.
type Attack interface {
	// Name returns the canonical lower-case attack name.
	Name() string
	// Apply returns the corrupted vector to send in place of honest. If
	// ok is false the node omits its reply entirely (a drop fault).
	// honestPeers carries the gradients of the correct nodes for
	// collusion-style attacks; nil for oblivious attacks.
	Apply(honest tensor.Vector, honestPeers []tensor.Vector) (v tensor.Vector, ok bool)
}

// ErrUnknownAttack is returned by New for an unrecognized attack name.
var ErrUnknownAttack = errors.New("attack: unknown attack")

// Names of the built-in attacks, accepted by New.
const (
	NameNone           = "none"
	NameRandom         = "random"
	NameReversed       = "reversed"
	NameDrop           = "drop"
	NameLittleIsEnough = "littleisenough"
	NameFallOfEmpires  = "fallofempires"
	NameStale          = "stale"
)

// New constructs an attack by name with its paper-default parameters.
// The rng seeds stochastic attacks; it may be nil for deterministic ones.
func New(name string, rng *tensor.RNG) (Attack, error) {
	switch strings.ToLower(name) {
	case NameNone:
		return None{}, nil
	case NameRandom:
		return NewRandom(rng, 1.0), nil
	case NameReversed:
		return Reversed{Factor: -100}, nil
	case NameDrop:
		return Drop{}, nil
	case NameLittleIsEnough:
		return LittleIsEnough{Z: 1.5}, nil
	case NameFallOfEmpires:
		return FallOfEmpires{Epsilon: 1.1}, nil
	case NameStale:
		return &Stale{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownAttack, name)
	}
}

// Names returns the attack names New accepts, in a stable order.
func Names() []string {
	return []string{NameNone, NameRandom, NameReversed, NameDrop,
		NameLittleIsEnough, NameFallOfEmpires, NameStale}
}

// None is the identity attack: the node behaves honestly. It exists so
// Byzantine node objects can be configured benign in control experiments.
type None struct{}

var _ Attack = None{}

// Name implements Attack.
func (None) Name() string { return NameNone }

// Apply implements Attack.
func (None) Apply(honest tensor.Vector, _ []tensor.Vector) (tensor.Vector, bool) {
	return honest, true
}

// Random replaces the payload with i.i.d. Gaussian noise of the configured
// scale — the paper's "random vectors" attack (Figure 5a). The mutex keeps
// the shared RNG safe under the RPC server's concurrent Handle calls (one
// attack instance may back several Byzantine nodes).
type Random struct {
	mu    sync.Mutex
	rng   *tensor.RNG
	scale float64
}

var _ Attack = (*Random)(nil)

// NewRandom returns a random-vector attack with the given noise scale.
func NewRandom(rng *tensor.RNG, scale float64) *Random {
	if rng == nil {
		rng = tensor.NewRNG(0xbad)
	}
	return &Random{rng: rng, scale: scale}
}

// Name implements Attack.
func (r *Random) Name() string { return NameRandom }

// Apply implements Attack.
func (r *Random) Apply(honest tensor.Vector, _ []tensor.Vector) (tensor.Vector, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.NormalVector(len(honest), 0, r.scale), true
}

// Reversed multiplies the honest payload by a large negative factor
// (-100 in the paper) — the "reversed and amplified vectors" attack
// (Figure 5b). Against plain averaging it pushes the model in the exact
// wrong direction.
type Reversed struct {
	// Factor is the multiplier applied to the honest vector; the paper
	// uses -100.
	Factor float64
}

var _ Attack = Reversed{}

// Name implements Attack.
func (Reversed) Name() string { return NameReversed }

// Apply implements Attack.
func (a Reversed) Apply(honest tensor.Vector, _ []tensor.Vector) (tensor.Vector, bool) {
	return honest.Scale(a.Factor), true
}

// Drop omits the reply entirely, modelling message omission / mute nodes.
type Drop struct{}

var _ Attack = Drop{}

// Name implements Attack.
func (Drop) Name() string { return NameDrop }

// Apply implements Attack.
func (Drop) Apply(tensor.Vector, []tensor.Vector) (tensor.Vector, bool) {
	return nil, false
}

// LittleIsEnough (Baruch et al. 2019) has the colluding Byzantine nodes send
// mean - z*sigma of the honest gradients, a perturbation small enough to slip
// past distance-based GARs yet biased enough to prevent convergence.
type LittleIsEnough struct {
	// Z is the number of standard deviations to shift by; the original
	// paper picks z around 1-1.5 depending on n and f.
	Z float64
}

var _ Attack = LittleIsEnough{}

// Name implements Attack.
func (LittleIsEnough) Name() string { return NameLittleIsEnough }

// Apply implements Attack.
func (a LittleIsEnough) Apply(honest tensor.Vector, honestPeers []tensor.Vector) (tensor.Vector, bool) {
	mean, std, err := meanStd(honestPeers)
	if err != nil {
		// Without visibility into peers, degrade to reversing the local
		// gradient (still adversarial, never crash the pipeline).
		return honest.Scale(-1), true
	}
	out := mean.Clone()
	for i := range out {
		out[i] -= a.Z * std[i]
	}
	return out, true
}

// FallOfEmpires (Xie et al. 2019) sends -epsilon times the honest mean:
// inner-product manipulation that keeps the vector colinear with the honest
// direction but flips its sign.
type FallOfEmpires struct {
	// Epsilon scales the negated mean; values near 1 are the published
	// sweet spot.
	Epsilon float64
}

var _ Attack = FallOfEmpires{}

// Name implements Attack.
func (FallOfEmpires) Name() string { return NameFallOfEmpires }

// Apply implements Attack.
func (a FallOfEmpires) Apply(honest tensor.Vector, honestPeers []tensor.Vector) (tensor.Vector, bool) {
	mean, err := tensor.Mean(honestPeers)
	if err != nil {
		return honest.Scale(-a.Epsilon), true
	}
	return mean.Scale(-a.Epsilon), true
}

// Stale always replays the first payload it ever computed — the staleness
// fault of asynchronous training: a node stuck on an ancient model state
// keeps contributing outdated gradients. Unlike Drop it stays live, so
// quorum-based liveness checks cannot filter it.
type Stale struct {
	mu     sync.Mutex
	frozen tensor.Vector
}

var _ Attack = (*Stale)(nil)

// Name implements Attack.
func (*Stale) Name() string { return NameStale }

// Apply implements Attack.
func (s *Stale) Apply(honest tensor.Vector, _ []tensor.Vector) (tensor.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen == nil {
		s.frozen = honest.Clone()
	}
	return s.frozen.Clone(), true
}

// meanStd returns the coordinate-wise mean and standard deviation of vs.
func meanStd(vs []tensor.Vector) (mean, std tensor.Vector, err error) {
	mean, err = tensor.Mean(vs)
	if err != nil {
		return nil, nil, err
	}
	std = tensor.New(len(mean))
	for _, v := range vs {
		for i := range v {
			d := v[i] - mean[i]
			std[i] += d * d
		}
	}
	inv := 1 / float64(len(vs))
	for i := range std {
		std[i] = math.Sqrt(std[i] * inv)
	}
	return mean, std, nil
}
