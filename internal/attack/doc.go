// Package attack implements the Byzantine behaviours evaluated in the paper
// (Section 3.2): the simple attacks — random vectors, reversed/amplified
// vectors, dropped vectors — the state-of-the-art ones — "a little is
// enough" (Baruch et al.) and "fall of empires" (Xie et al.) — and a stale
// replay fault.
//
// # The Attack contract
//
// An Attack transforms the vector an honest node would have sent into the
// vector the Byzantine node actually sends, via Apply(honest, honestPeers):
//
//   - honest is the payload an honest node would send (a gradient estimate
//     at a worker, a model or aggregated gradient at a server). Apply must
//     not mutate it.
//   - honestPeers carries a sample of the correct nodes' gradients for
//     collusion-style attacks, which are assumed to observe honest
//     statistics — the strongest adversary model. It is nil for oblivious
//     attacks and at servers; collusion attacks must degrade gracefully
//     (they fall back to sign-flipping) rather than fail.
//   - Returning ok == false means the node omits its reply entirely — the
//     omission fault. Quorum-based collection (q < n) rides it out;
//     synchronous collection (q = n) cannot, by design.
//   - One Attack value may back several Byzantine nodes and is invoked from
//     the RPC server's concurrent handlers, so implementations with state
//     (a shared RNG, the stale attack's frozen payload) must be
//     self-synchronizing.
//
// Construction goes through New(name, rng) with the paper-default
// parameters (reversed factor -100, little-is-enough z 1.5, fall-of-empires
// epsilon 1.1, random scale 1.0); the rng seeds stochastic attacks and may
// be nil for deterministic ones. The scenario engine's AttackSpec wraps
// exactly this constructor, so every name accepted here is addressable from
// a JSON scenario.
package attack
