package sim

import (
	"context"
	"sort"
	"testing"
	"time"

	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// popAll drains the queue and returns the events in pop order.
func popAll(q *EventQueue) []Event {
	var out []Event
	for {
		ev, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// TestEventQueuePopOrder inserts events at pseudo-random times and checks
// the queue pops them in (At, Seq) order — the total order the whole
// engine's determinism rests on.
func TestEventQueuePopOrder(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 0xdeadbeef} {
		rng := tensor.NewRNG(seed)
		q := NewEventQueue()
		const n = 500
		want := make([]Event, 0, n)
		for i := 0; i < n; i++ {
			// Coarse buckets force plenty of ties, exercising the Seq
			// tiebreak, not just the time ordering.
			at := time.Duration(rng.Intn(20)) * time.Millisecond
			ev, err := q.Schedule(at, i)
			if err != nil {
				t.Fatalf("seed %d: schedule: %v", seed, err)
			}
			if ev.Payload != i {
				t.Fatalf("seed %d: payload %d != %d", seed, ev.Payload, i)
			}
			want = append(want, ev)
		}
		sort.Slice(want, func(a, b int) bool { return want[a].before(want[b]) })
		got := popAll(q)
		if len(got) != n {
			t.Fatalf("seed %d: popped %d of %d", seed, len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: pop %d = %+v, want %+v", seed, i, got[i], want[i])
			}
			if i > 0 && got[i].before(got[i-1]) {
				t.Fatalf("seed %d: pop order inversion at %d", seed, i)
			}
		}
	}
}

// TestEventQueueRejectsPast checks the watermark invariant: once an event
// at time t popped, nothing can be scheduled before t.
func TestEventQueueRejectsPast(t *testing.T) {
	q := NewEventQueue()
	if _, err := q.Schedule(10*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if q.Now() != 10*time.Millisecond {
		t.Fatalf("watermark %v, want 10ms", q.Now())
	}
	if _, err := q.Schedule(9*time.Millisecond, 0); err == nil {
		t.Fatal("schedule before watermark succeeded")
	}
	if _, err := q.Schedule(10*time.Millisecond, 0); err != nil {
		t.Fatalf("schedule at watermark rejected: %v", err)
	}
}

// TestEventQueueClearKeepsWatermark checks the straggler-cancellation path:
// Clear discards pending events but must not advance the watermark to their
// due times — the next round schedules relative to the virtual clock, which
// is at the quorum-completing arrival, not the last straggler's.
func TestEventQueueClearKeepsWatermark(t *testing.T) {
	q := NewEventQueue()
	for _, at := range []time.Duration{time.Millisecond, time.Hour} {
		if _, err := q.Schedule(at, 0); err != nil {
			t.Fatal(err)
		}
	}
	q.Pop() // quorum reached at 1ms; the 1h straggler is cancelled
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("len %d after clear", q.Len())
	}
	if q.Now() != time.Millisecond {
		t.Fatalf("watermark %v after clear, want 1ms", q.Now())
	}
	if _, err := q.Schedule(2*time.Millisecond, 0); err != nil {
		t.Fatalf("post-clear schedule rejected: %v", err)
	}
}

// TestVirtualClockMonotonic checks that sleeps and out-of-order AdvanceTo
// calls never move the clock backwards.
func TestVirtualClockMonotonic(t *testing.T) {
	c := NewVirtualClock()
	if got := c.Now(); !got.Equal(simEpoch) {
		t.Fatalf("fresh clock at %v, want epoch %v", got, simEpoch)
	}
	c.Sleep(5 * time.Millisecond)
	c.Sleep(-time.Hour)               // no-op
	c.AdvanceTo(3 * time.Millisecond) // behind: no-op
	if got := c.Elapsed(); got != 5*time.Millisecond {
		t.Fatalf("elapsed %v, want 5ms", got)
	}
	c.AdvanceTo(9 * time.Millisecond)
	if got := c.Elapsed(); got != 9*time.Millisecond {
		t.Fatalf("elapsed %v, want 9ms", got)
	}
	if got := c.Now(); !got.Equal(simEpoch.Add(9 * time.Millisecond)) {
		t.Fatalf("now %v, want epoch+9ms", got)
	}
}

// TestLatencyDrawStability checks that a link's draw sequence is a pure
// function of (seed, src, dst): interleaving draws on other links, or
// drawing on links created in a different order, never perturbs it.
func TestLatencyDrawStability(t *testing.T) {
	const seed = 99
	base, jitter := time.Millisecond, 500*time.Microsecond

	// Reference: the a→b stream drawn alone.
	ref := NewLatencyModel(seed, base, jitter, 0)
	want := make([]time.Duration, 8)
	for i := range want {
		want[i] = ref.Draw("a", "b", 0)
	}

	// Same stream with heavy interleaving on other links (including the
	// reverse direction, which must be an independent stream).
	m := NewLatencyModel(seed, base, jitter, 0)
	for _, l := range []struct{ src, dst string }{{"b", "a"}, {"c", "d"}, {"a", "c"}} {
		m.Draw(l.src, l.dst, 0)
	}
	for i, w := range want {
		for j := 0; j < i; j++ {
			m.Draw("b", "a", 0) // interleave
		}
		if got := m.Draw("a", "b", 0); got != w {
			t.Fatalf("draw %d = %v, want %v (interleaving perturbed the stream)", i, got, w)
		}
	}

	// Draws are bounded by base + jitter and at least base.
	for _, w := range want {
		if w < base || w >= base+jitter {
			t.Fatalf("draw %v outside [%v, %v)", w, base, base+jitter)
		}
	}

	// Reverse direction differs from forward (directed links).
	fwd := NewLatencyModel(seed, base, jitter, 0).Draw("a", "b", 0)
	rev := NewLatencyModel(seed, base, jitter, 0).Draw("b", "a", 0)
	if fwd == rev {
		t.Fatal("forward and reverse link drew identically (streams not direction-separated)")
	}
}

// TestLatencyZeroConfigIsZero checks the zero-latency configuration draws
// exactly zero — the precondition for sim-vs-live bit-equality.
func TestLatencyZeroConfigIsZero(t *testing.T) {
	m := NewLatencyModel(7, 0, 0, 0)
	for i := 0; i < 4; i++ {
		if d := m.Draw("a", "b", 1<<20); d != 0 {
			t.Fatalf("zero-config draw %d = %v", i, d)
		}
	}
}

// TestLatencyBandwidthTerm checks the payload-size term.
func TestLatencyBandwidthTerm(t *testing.T) {
	m := NewLatencyModel(7, 0, 0, 1) // 1 MB/s = 1 byte/µs
	if d := m.Draw("a", "b", 1000); d != time.Millisecond {
		t.Fatalf("1000 B at 1 MB/s = %v, want 1ms", d)
	}
}

// echoHandler replies with the request vector scaled by a constant, so the
// test can tell replies apart and verify cloning.
type echoHandler struct{ scale float64 }

func (h echoHandler) Handle(req rpc.Request) rpc.Response {
	return rpc.Response{OK: true, Vec: req.Vec.Scale(h.scale)}
}

// TestWiringPullAdvancesClock runs a quorum pull through the full engine
// and checks virtual time lands on the q-th arrival, stragglers are
// cancelled, and the pull latency is recorded.
func TestWiringPullAdvancesClock(t *testing.T) {
	w := New(Config{Seed: 1, Latency: time.Millisecond})
	for _, addr := range []string{"p0", "p1", "p2"} {
		if _, err := w.Serve(addr, echoHandler{scale: 2}); err != nil {
			t.Fatal(err)
		}
	}
	cl := w.NewCaller("client")
	replies, err := cl.PullFirstQ(context.Background(), []string{"p0", "p1", "p2"}, 2,
		rpc.Request{Vec: tensor.Vector{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("%d replies, want 2", len(replies))
	}
	if got := replies[0].Vec; got[0] != 2 || got[1] != 4 {
		t.Fatalf("reply %v, want [2 4]", got)
	}
	// Constant 1ms latency: quorum completes at the second arrival, still
	// 1ms after start (all arrivals coincide), and the straggler event is
	// gone.
	if got := w.clock.Elapsed(); got != time.Millisecond {
		t.Fatalf("clock at %v, want 1ms", got)
	}
	if w.queue.Len() != 0 {
		t.Fatalf("%d straggler events left in queue", w.queue.Len())
	}
	st := w.Stats()
	if st.Pulls != 1 || st.StepP50 != time.Millisecond {
		t.Fatalf("stats %+v, want 1 pull at p50=1ms", st)
	}
}

// TestWiringQuorumFailure checks the live client's failure accounting: with
// too few live peers for q successes the pull fails with ErrQuorum and the
// queue is drained.
func TestWiringQuorumFailure(t *testing.T) {
	w := New(Config{})
	if _, err := w.Serve("p0", echoHandler{scale: 1}); err != nil {
		t.Fatal(err)
	}
	cl := w.NewCaller("client")
	_, err := cl.PullFirstQ(context.Background(), []string{"p0", "dead1", "dead2"}, 2, rpc.Request{})
	if err == nil {
		t.Fatal("pull with 1 live of q=2 succeeded")
	}
	if w.queue.Len() != 0 {
		t.Fatalf("%d events left after failed pull", w.queue.Len())
	}
}
