package sim

import (
	"context"
	"fmt"

	"garfield/internal/compress"
	"garfield/internal/rpc"
	"garfield/internal/tensor"
)

// Caller implements rpc.Caller by dispatching requests directly to the
// wiring's registered handlers under the virtual clock. Semantics mirror
// the live client exactly — origin stamping, quorum accounting, payload
// decompression with the same dimension bound, the same sentinel errors —
// so the protocol runners cannot tell the engines apart; only the transport
// mechanics (frames, goroutines, wall time) are gone.
type Caller struct {
	w    *Wiring
	self string
}

var _ rpc.Caller = (*Caller)(nil)

// stamped mirrors the live client's origin stamping: the caller's bound
// identity fills From only when the request carries none, so adversarial
// handlers can equivocate deterministically per puller.
func stamped(req rpc.Request, self string) rpc.Request {
	if req.From == "" {
		req.From = self
	}
	return req
}

// reqBytes estimates the request's wire size for the bandwidth term: the
// fp64 payload of the carried model state plus a small frame overhead.
func reqBytes(req rpc.Request) int {
	return 8*len(req.Vec) + 16
}

// Call sends one request to one peer: schedule the arrival one latency draw
// ahead, advance the virtual clock to it, dispatch, decode.
func (c *Caller) Call(ctx context.Context, addr string, req rpc.Request) (tensor.Vector, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req = stamped(req, c.self)
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	at := w.clock.Elapsed() + w.lat.Draw(c.self, addr, reqBytes(req))
	ev, err := w.queue.Schedule(at, 0)
	if err != nil {
		return nil, err
	}
	w.queue.Pop()
	w.clock.AdvanceTo(ev.At)
	return w.dispatchLocked(addr, req)
}

// PullFirstQ collects the first q successful replies in virtual-arrival
// order: one arrival event per peer goes into the event queue at the
// current time plus that link's latency draw, events pop in (time, seq)
// order, each pop advances the clock and dispatches the peer's handler, and
// the round completes at the q-th success — whose arrival time, minus the
// round's start, is the step latency the engine's percentiles summarize.
// Failure accounting matches the live client: the round fails as soon as
// too many peers have failed for q successes to remain possible.
func (c *Caller) PullFirstQ(ctx context.Context, peers []string, q int, req rpc.Request) ([]rpc.Reply, error) {
	return c.PullFirstQInto(ctx, peers, q, req, nil)
}

// PullFirstQInto is PullFirstQ with caller-owned decode destinations (the
// fused path; see rpc.Caller). Arrivals dispatch strictly sequentially under
// the virtual clock, so slots are resolved at dispatch time — there is no
// fan-out to pre-resolve for.
func (c *Caller) PullFirstQInto(ctx context.Context, peers []string, q int, req rpc.Request, slots rpc.ReplySlots) ([]rpc.Reply, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q <= 0 || q > len(peers) {
		return nil, fmt.Errorf("rpc: invalid quorum %d of %d peers", q, len(peers))
	}
	req = stamped(req, c.self)
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	start := w.clock.Elapsed()
	size := reqBytes(req)
	for i, peer := range peers {
		if _, err := w.queue.Schedule(start+w.lat.Draw(c.self, peer, size), i); err != nil {
			w.queue.Clear()
			return nil, err
		}
	}
	replies := make([]rpc.Reply, 0, q)
	failures := 0
	var lastErr error
	for {
		ev, ok := w.queue.Pop()
		if !ok {
			break
		}
		w.clock.AdvanceTo(ev.At)
		peer := peers[ev.Payload]
		var dst *tensor.Vector
		if slots != nil {
			dst = slots.ReplySlot(ev.Payload)
		}
		vec, err := w.dispatchLockedInto(peer, req, dst)
		if err != nil {
			failures++
			lastErr = err
			if failures > len(peers)-q {
				w.queue.Clear()
				return replies, fmt.Errorf("%w: %d/%d failed, last: %v",
					rpc.ErrQuorum, failures, len(peers), lastErr)
			}
			continue
		}
		replies = append(replies, rpc.Reply{From: peer, Vec: vec})
		if len(replies) == q {
			// Quorum reached: the stragglers' arrivals are cancelled, like
			// the live client cancelling its in-flight tasks.
			w.queue.Clear()
			w.pullLat = append(w.pullLat, ev.At-start)
			return replies, nil
		}
	}
	return replies, fmt.Errorf("%w: %d/%d replies", rpc.ErrQuorum, len(replies), q)
}

// dispatchLocked invokes the peer's handler at the current virtual time and
// decodes its response under the live client's rules. Must hold w.mu.
func (w *Wiring) dispatchLocked(addr string, req rpc.Request) (tensor.Vector, error) {
	return w.dispatchLockedInto(addr, req, nil)
}

// dispatchLockedInto is dispatchLocked with an optional caller-owned decode
// destination (the fused path): a non-nil dst receives the reply in place,
// reusing its backing array across rounds. Must hold w.mu.
func (w *Wiring) dispatchLockedInto(addr string, req rpc.Request, dst *tensor.Vector) (tensor.Vector, error) {
	w.calls++
	h, ok := w.handlers[addr]
	if !ok {
		return nil, fmt.Errorf("rpc: dial %q: no node at address", addr)
	}
	resp := h.Handle(req)
	if !resp.OK {
		return nil, fmt.Errorf("rpc: %q: %w", addr, rpc.ErrNotServed)
	}
	if resp.Enc != compress.EncFP64 {
		// Compressed reply: decode the payload exactly as the live client
		// does — same codec entry point, same dimension bound — and recycle
		// pooled payload buffers the way the serving loop would after
		// writing the frame.
		bound := compress.MaxDim
		if req.Vec != nil {
			bound = len(req.Vec)
		}
		var vec tensor.Vector
		if dst != nil {
			vec = *dst
		}
		err := compress.DecodeBounded(&vec, resp.Enc, resp.Payload, bound)
		if resp.FreePayload && resp.Payload != nil {
			compress.PutBuf(resp.Payload)
		}
		if err != nil {
			return nil, fmt.Errorf("rpc: from %q: %w", addr, err)
		}
		if dst != nil {
			*dst = vec
		}
		return vec, nil
	}
	if resp.Vec == nil {
		return nil, nil
	}
	// The live path serializes the reply, so the puller always owns a fresh
	// vector. Direct dispatch must copy to preserve that: deterministic
	// handlers serve one shared cached vector to every puller, and the GARs
	// and staleness damping mutate pulled vectors in place. With a fused
	// destination the copy lands in the slot's backing array instead of a
	// fresh clone.
	if dst != nil {
		*dst = tensor.Resize(*dst, len(resp.Vec))
		copy(*dst, resp.Vec)
		return *dst, nil
	}
	return resp.Vec.Clone(), nil
}
