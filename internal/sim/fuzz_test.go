package sim

import (
	"sort"
	"testing"
	"time"
)

// FuzzEventQueue drives the queue with an arbitrary program of schedule,
// pop and clear operations decoded from the fuzz input, mirrored against a
// sorted-slice reference model, and checks the heap agrees with the model
// on every pop, respects the watermark, and never delivers out of order.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0, 5, 0, 3, 1, 1, 0, 0, 2, 0, 1})
	f.Add([]byte{1, 0, 2, 0})
	f.Add([]byte{0, 255, 0, 0, 1})
	f.Fuzz(func(t *testing.T, program []byte) {
		q := NewEventQueue()
		var model []Event // pending events, kept unsorted
		lastPopped := time.Duration(-1)
		for i := 0; i < len(program); i++ {
			switch program[i] % 3 {
			case 0: // schedule at watermark + delta (delta from next byte)
				var delta byte
				if i+1 < len(program) {
					i++
					delta = program[i]
				}
				at := q.Now() + time.Duration(delta)*time.Microsecond
				ev, err := q.Schedule(at, int(delta))
				if err != nil {
					t.Fatalf("op %d: schedule at watermark+%d rejected: %v", i, delta, err)
				}
				model = append(model, ev)
			case 1: // pop
				ev, ok := q.Pop()
				if !ok {
					if len(model) != 0 {
						t.Fatalf("op %d: queue empty with %d modeled events", i, len(model))
					}
					continue
				}
				// The model's minimum under (At, Seq) must be what popped.
				min := 0
				for j := 1; j < len(model); j++ {
					if model[j].before(model[min]) {
						min = j
					}
				}
				if len(model) == 0 {
					t.Fatalf("op %d: queue popped %+v with empty model", i, ev)
				}
				if ev != model[min] {
					t.Fatalf("op %d: popped %+v, model min %+v", i, ev, model[min])
				}
				model = append(model[:min], model[min+1:]...)
				if ev.At < lastPopped {
					t.Fatalf("op %d: pop time %v went backwards from %v", i, ev.At, lastPopped)
				}
				lastPopped = ev.At
				if q.Now() != ev.At {
					t.Fatalf("op %d: watermark %v != popped time %v", i, q.Now(), ev.At)
				}
			case 2: // clear
				before := q.Now()
				q.Clear()
				model = model[:0]
				if q.Len() != 0 {
					t.Fatalf("op %d: len %d after clear", i, q.Len())
				}
				if q.Now() != before {
					t.Fatalf("op %d: clear moved watermark %v -> %v", i, before, q.Now())
				}
			}
			if q.Len() != len(model) {
				t.Fatalf("op %d: queue len %d != model len %d", i, q.Len(), len(model))
			}
			// Scheduling strictly before the watermark must always fail.
			if q.Now() > 0 {
				if _, err := q.Schedule(q.Now()-1, 0); err == nil {
					t.Fatalf("op %d: past schedule accepted", i)
				}
			}
		}
		// Drain: remaining events must come out exactly sorted.
		rest := popAll(q)
		sort.Slice(model, func(a, b int) bool { return model[a].before(model[b]) })
		if len(rest) != len(model) {
			t.Fatalf("drained %d, model has %d", len(rest), len(model))
		}
		for i := range rest {
			if rest[i] != model[i] {
				t.Fatalf("drain %d: %+v != %+v", i, rest[i], model[i])
			}
		}
	})
}
