// Package sim is the deterministic discrete-event cluster simulator: a
// virtual clock, a (time, seq)-ordered event queue and seeded per-link
// latency models behind the core.Wiring seam. The existing protocol logic —
// GAR rounds, attacks, compression negotiation, the async replay — runs
// unchanged; what changes is the execution substrate: requests dispatch
// directly to the registered node handlers in virtual-arrival order instead
// of traveling goroutine-per-node RPC, so one process holds thousands of
// simulated nodes and the same seed produces byte-identical artifacts
// regardless of host load. (internal/simnet is the complementary *analytic*
// performance model of the paper's throughput figures; this package
// actually executes the training protocols, just on simulated time.)
//
// At zero configured latency the event queue pops arrivals in peer order,
// which — combined with deterministic mode's canonical reply ordering — makes
// a simulated run bit-identical to a live deterministic run at the same
// seed; the equivalence goldens in the scenario package lock that property.
package sim

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"garfield/internal/core"
	"garfield/internal/rpc"
)

// Config parameterizes one simulated network.
type Config struct {
	// Seed drives the per-link latency draws (domain-separated per link, so
	// adding a node never perturbs existing links' streams).
	Seed uint64
	// Latency is the base one-way message latency of every link.
	Latency time.Duration
	// Jitter adds a per-message uniform draw in [0, Jitter) on top.
	Jitter time.Duration
	// BandwidthMBps is the per-link bandwidth in megabytes per second used
	// to charge payload serialization time; 0 means infinite (no size term).
	BandwidthMBps float64
}

// Wiring implements core.Wiring over the discrete-event engine. It owns the
// virtual clock, the event queue, the latency model and the handler
// registry; cluster construction (core.NewClusterWith) registers every
// node's handler here and the protocol runners then drive rounds whose
// pulls advance virtual time.
type Wiring struct {
	clock *VirtualClock
	lat   *LatencyModel

	mu       sync.Mutex
	handlers map[string]rpc.Handler
	queue    *EventQueue
	// pullLat records each completed pull round's virtual quorum-completion
	// latency; Stats derives the step-latency percentiles from it.
	pullLat []time.Duration
	calls   int
}

var _ core.Wiring = (*Wiring)(nil)

// New returns a Wiring for one simulated deployment.
func New(cfg Config) *Wiring {
	return &Wiring{
		clock:    NewVirtualClock(),
		lat:      NewLatencyModel(cfg.Seed, cfg.Latency, cfg.Jitter, cfg.BandwidthMBps),
		handlers: make(map[string]rpc.Handler),
		queue:    NewEventQueue(),
	}
}

// Serve registers handler at addr; the returned closer withdraws it (pulls
// to a withdrawn address fail like dials to a crashed node).
func (w *Wiring) Serve(addr string, handler rpc.Handler) (io.Closer, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.handlers[addr]; ok {
		return nil, fmt.Errorf("sim: listen %q: address in use", addr)
	}
	w.handlers[addr] = handler
	return &unserve{w: w, addr: addr}, nil
}

type unserve struct {
	w    *Wiring
	addr string
}

func (u *unserve) Close() error {
	u.w.mu.Lock()
	defer u.w.mu.Unlock()
	delete(u.w.handlers, u.addr)
	return nil
}

// NewCaller returns the direct-dispatch rpc.Caller for the node at self.
func (w *Wiring) NewCaller(self string) rpc.Caller {
	return &Caller{w: w, self: self}
}

// Clock returns the simulation's virtual clock.
func (w *Wiring) Clock() core.Clock { return w.clock }

// Stats summarizes the engine's measurements so far: dispatched calls,
// completed pull rounds, and the virtual-time percentiles of how long each
// round took to reach its quorum. All virtual-time derived, hence
// deterministic per seed.
type Stats struct {
	// Calls counts direct handler dispatches (failed ones included).
	Calls int
	// Pulls counts completed quorum pull rounds.
	Pulls int
	// StepP50 and StepP99 are percentiles of the per-pull virtual latency
	// from round start to quorum completion.
	StepP50 time.Duration
	StepP99 time.Duration
}

// Stats returns the engine's measurement snapshot.
func (w *Wiring) Stats() Stats {
	w.mu.Lock()
	lats := append([]time.Duration(nil), w.pullLat...)
	calls := w.calls
	w.mu.Unlock()
	st := Stats{Calls: calls, Pulls: len(lats)}
	if len(lats) == 0 {
		return st
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	st.StepP50 = lats[(len(lats)-1)*50/100]
	st.StepP99 = lats[(len(lats)-1)*99/100]
	return st
}
