package sim

import (
	"fmt"
	"time"
)

// Event is one scheduled occurrence: a virtual due time plus the insertion
// sequence number that breaks ties. Payload carries the scheduler's own
// tag (the pull engine stores the peer index of the arriving reply).
type Event struct {
	At      time.Duration
	Seq     uint64
	Payload int
}

// before is the queue's total order: due time first, insertion sequence as
// the tiebreak. Ties are common — a zero-latency network schedules a whole
// pull round at one instant — and the seq tiebreak is what keeps pop order
// equal to insertion order there, which the sim-vs-live equivalence goldens
// rely on.
func (e Event) before(o Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	return e.Seq < o.Seq
}

// EventQueue is a binary min-heap of events ordered by (At, Seq), with a
// watermark at the last popped time: scheduling an event before the
// watermark is an error, because simulated time only moves forward and an
// event in the past could never be delivered in order.
type EventQueue struct {
	h   []Event
	seq uint64
	now time.Duration
}

// NewEventQueue returns an empty queue with the watermark at time zero.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Now returns the watermark: the due time of the latest popped event.
func (q *EventQueue) Now() time.Duration { return q.now }

// Schedule enqueues an event due at the given virtual time and returns it
// (with its assigned sequence number); scheduling before the watermark is
// rejected.
func (q *EventQueue) Schedule(at time.Duration, payload int) (Event, error) {
	if at < q.now {
		return Event{}, fmt.Errorf("sim: schedule at %v before virtual now %v", at, q.now)
	}
	ev := Event{At: at, Seq: q.seq, Payload: payload}
	q.seq++
	q.h = append(q.h, ev)
	q.up(len(q.h) - 1)
	return ev, nil
}

// Pop removes and returns the earliest event in (At, Seq) order, advancing
// the watermark to its due time; ok is false on an empty queue.
func (q *EventQueue) Pop() (ev Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	ev = q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	q.now = ev.At
	return ev, true
}

// Clear discards every pending event without advancing the watermark — the
// cancellation path for straggler arrivals past a satisfied quorum, whose
// due times must not drag the watermark ahead of the virtual clock.
func (q *EventQueue) Clear() {
	q.h = q.h[:0]
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(q.h) && q.h[l].before(q.h[least]) {
			least = l
		}
		if r < len(q.h) && q.h[r].before(q.h[least]) {
			least = r
		}
		if least == i {
			return
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}
