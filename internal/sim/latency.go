package sim

import (
	"encoding/binary"
	"hash/fnv"
	"sync"
	"time"

	"garfield/internal/tensor"
)

// LatencyModel draws per-message virtual latencies. Each directed link owns
// an RNG stream seeded by domain separation (FNV-64a over the model seed
// and the link's "/sim-link/src|dst" tag), so a link's draw sequence is a
// pure function of (seed, src, dst): adding nodes, reordering pulls across
// other links, or rerunning the process never perturbs it. A draw is
//
//	base latency + uniform jitter in [0, Jitter) + bytes / bandwidth
//
// with the jitter RNG consumed only when jitter is configured, keeping the
// zero-latency configuration draw-free (and therefore trivially identical
// to the live deterministic schedule).
type LatencyModel struct {
	seed      uint64
	base      time.Duration
	jitter    time.Duration
	perByteNS float64

	mu    sync.Mutex
	links map[string]*tensor.RNG
}

// NewLatencyModel returns a model with the given base latency, jitter bound
// and per-link bandwidth (MB/s; 0 disables the size term).
func NewLatencyModel(seed uint64, base, jitter time.Duration, bandwidthMBps float64) *LatencyModel {
	m := &LatencyModel{seed: seed, base: base, jitter: jitter, links: make(map[string]*tensor.RNG)}
	if bandwidthMBps > 0 {
		m.perByteNS = 1e9 / (bandwidthMBps * 1e6)
	}
	return m
}

// linkSeed derives the directed link's RNG seed from the model seed by
// domain separation, mirroring the cluster's other seed derivations.
func linkSeed(seed uint64, src, dst string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte("/sim-link/" + src + "|" + dst))
	return h.Sum64()
}

// Draw returns the next latency on the src→dst link for a message of the
// given payload size.
func (m *LatencyModel) Draw(src, dst string, bytes int) time.Duration {
	d := m.base
	if m.jitter > 0 {
		key := src + "|" + dst
		m.mu.Lock()
		rng, ok := m.links[key]
		if !ok {
			rng = tensor.NewRNG(linkSeed(m.seed, src, dst))
			m.links[key] = rng
		}
		d += time.Duration(rng.Float64() * float64(m.jitter))
		m.mu.Unlock()
	}
	if m.perByteNS > 0 {
		d += time.Duration(float64(bytes) * m.perByteNS)
	}
	return d
}
