package sim

import (
	"sync"
	"time"
)

// simEpoch anchors virtual time to a fixed instant, so every timestamp a
// simulated run produces is a pure function of how much virtual time
// elapsed — never of when the process ran.
var simEpoch = time.Unix(0, 0).UTC()

// VirtualClock implements core.Clock over simulated time: Now is the fixed
// epoch plus the elapsed virtual duration, and Sleep advances that duration
// instead of blocking. The clock only moves forward — event pops advance it
// to each arrival's due time, sleeps add to it — which is what makes wall
// time, accuracy-over-time axes and phase breakdowns deterministic under
// the simulator wiring.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtualClock returns a clock at virtual time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the fixed epoch plus the elapsed virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return simEpoch.Add(c.now)
}

// Sleep advances virtual time by d (non-positive d is a no-op); it never
// blocks.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Elapsed returns the virtual time elapsed since the clock's creation.
func (c *VirtualClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AdvanceTo moves the clock forward to virtual time t (measured from
// creation); a t at or behind the current time is a no-op, keeping the
// clock monotonic however arrivals interleave with sleeps.
func (c *VirtualClock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}
