package metrics

import (
	"strings"
	"testing"
)

func TestFigureRenderCSV(t *testing.T) {
	f := Figure{Title: "fig", XLabel: "x"}
	a := f.AddSeries("a")
	b := f.AddSeries("b")
	a.Append(1, 10)
	a.Append(2, 20)
	b.Append(2, 200)
	var sb strings.Builder
	if err := f.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), sb.String())
	}
	if lines[0] != "x,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,10," {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,20,200" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := Table{Title: "t", Header: []string{"name", "value"}}
	tb.AddRow("a", "1")
	tb.AddRow("with,comma", "2")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[2] != `"with,comma",2` {
		t.Fatalf("quoting broken: %q", lines[2])
	}
}
