// Package metrics provides the recorders and table/series printers the
// experiment harness uses to report results in the same form as the paper's
// tables and figures: accuracy-over-iterations curves, throughput rows, and
// per-iteration latency breakdowns.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points (one line of a figure).
type Series struct {
	Name   string
	Points []Point
}

// Append adds a sample.
func (s *Series) Append(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Last returns the final Y value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Y
}

// MaxY returns the maximum Y value, or 0 for an empty series.
func (s *Series) MaxY() float64 {
	var maxY float64
	for i, p := range s.Points {
		if i == 0 || p.Y > maxY {
			maxY = p.Y
		}
	}
	return maxY
}

// Figure is a set of series sharing x/y axes, printable as the tabular
// equivalent of one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries registers and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// SeriesByName returns the named series, or nil.
func (f *Figure) SeriesByName(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Render prints the figure as an aligned table: one row per distinct X,
// one column per series. Rows are sorted by X.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", f.Title); err != nil {
		return err
	}
	// Collect the union of X values.
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return renderTable(w, header, rows)
}

// Table is a free-form table (for Table 1 / Table 2 style output).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render prints the table aligned.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	return renderTable(w, t.Header, t.Rows)
}

func renderTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// trimFloat formats a float compactly (no trailing zeros).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	return s
}

// Breakdown accumulates per-phase latency for the Figure 7/16 stacked bars.
// It is safe for concurrent use (nodes record from multiple goroutines).
type Breakdown struct {
	mu      sync.Mutex
	compute time.Duration
	comm    time.Duration
	agg     time.Duration
	iters   int
}

// AddCompute records gradient-computation time.
func (b *Breakdown) AddCompute(d time.Duration) { b.add(&b.compute, d) }

// AddComm records communication time.
func (b *Breakdown) AddComm(d time.Duration) { b.add(&b.comm, d) }

// AddAgg records aggregation time.
func (b *Breakdown) AddAgg(d time.Duration) { b.add(&b.agg, d) }

func (b *Breakdown) add(dst *time.Duration, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	*dst += d
}

// EndIteration advances the iteration counter used by the Mean* methods.
func (b *Breakdown) EndIteration() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.iters++
}

// Merge folds another breakdown's accumulated phase times and iteration
// count into b — used when one logical run is driven as several protocol
// segments (e.g. around injected faults).
func (b *Breakdown) Merge(o *Breakdown) {
	o.mu.Lock()
	compute, comm, agg, iters := o.compute, o.comm, o.agg, o.iters
	o.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.compute += compute
	b.comm += comm
	b.agg += agg
	b.iters += iters
}

// Means returns average per-iteration compute, comm, and aggregation times.
func (b *Breakdown) Means() (compute, comm, agg time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.iters == 0 {
		return 0, 0, 0
	}
	n := time.Duration(b.iters)
	return b.compute / n, b.comm / n, b.agg / n
}

// Stopwatch measures one phase; use as:
//
//	done := metrics.Start()
//	...work...
//	breakdown.AddComm(done())
func Start() func() time.Duration {
	t0 := time.Now()
	return func() time.Duration { return time.Since(t0) }
}
