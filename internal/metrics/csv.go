package metrics

import (
	"encoding/csv"
	"io"
	"sort"
)

// CSV rendering of figures and tables, for piping experiment output into
// plotting tools. The row/column structure mirrors Render exactly.

// RenderCSV writes the figure as CSV: a header of the x label plus one
// column per series, then one row per distinct x value (sorted). Missing
// points are empty cells.
func (f *Figure) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderCSV writes the table as CSV: header row then data rows.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
