package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesAppendLastMax(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.MaxY() != 0 {
		t.Fatal("empty series should report 0")
	}
	s.Append(1, 5)
	s.Append(2, 9)
	s.Append(3, 7)
	if s.Last() != 7 {
		t.Fatalf("Last = %v", s.Last())
	}
	if s.MaxY() != 9 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{Title: "fig", XLabel: "x", YLabel: "y"}
	a := f.AddSeries("a")
	b := f.AddSeries("b")
	a.Append(1, 10)
	a.Append(2, 20)
	b.Append(2, 200)
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# fig") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("missing headers: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + 2 x-rows
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[3], "200") {
		t.Fatalf("row for x=2 missing b value: %q", lines[3])
	}
}

func TestSeriesByName(t *testing.T) {
	f := Figure{}
	f.AddSeries("one")
	if f.SeriesByName("one") == nil {
		t.Fatal("SeriesByName missed existing series")
	}
	if f.SeriesByName("two") != nil {
		t.Fatal("SeriesByName invented a series")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "models", Header: []string{"name", "params"}}
	tb.AddRow("tiny", "10")
	tb.AddRow("huge", "1000000")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "models") || !strings.Contains(out, "1000000") {
		t.Fatalf("bad table: %q", out)
	}
	// Columns must be aligned: "tiny" padded to width of "name"/"huge".
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestBreakdownMeans(t *testing.T) {
	var b Breakdown
	b.AddCompute(2 * time.Second)
	b.AddComm(4 * time.Second)
	b.AddAgg(1 * time.Second)
	b.EndIteration()
	b.AddCompute(4 * time.Second)
	b.AddComm(2 * time.Second)
	b.AddAgg(3 * time.Second)
	b.EndIteration()
	comp, comm, agg := b.Means()
	if comp != 3*time.Second || comm != 3*time.Second || agg != 2*time.Second {
		t.Fatalf("means = %v %v %v", comp, comm, agg)
	}
}

func TestBreakdownZeroIterations(t *testing.T) {
	var b Breakdown
	comp, comm, agg := b.Means()
	if comp != 0 || comm != 0 || agg != 0 {
		t.Fatal("zero-iteration means should be 0")
	}
}

func TestBreakdownConcurrent(t *testing.T) {
	var b Breakdown
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				b.AddComm(time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	b.EndIteration()
	_, comm, _ := b.Means()
	if comm != 800*time.Millisecond {
		t.Fatalf("comm = %v", comm)
	}
}

func TestStopwatch(t *testing.T) {
	done := Start()
	time.Sleep(5 * time.Millisecond)
	if d := done(); d < 4*time.Millisecond {
		t.Fatalf("stopwatch too short: %v", d)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(2) != "2" {
		t.Fatalf("trimFloat(2) = %q", trimFloat(2))
	}
	if trimFloat(0.5) != "0.5" {
		t.Fatalf("trimFloat(0.5) = %q", trimFloat(0.5))
	}
}
