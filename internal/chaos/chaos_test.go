package chaos

import (
	"strings"
	"testing"

	"garfield/internal/scenario"
)

// TestChaosInvariantsHoldOnEveryPreset is the acceptance suite of the chaos
// engine: every preset's machine-checked resilience properties must hold —
// safety (bounded honest-model drift under <= f/fs adversaries, with the
// plain-averaging contrast diverging), liveness (post-heal throughput
// recovery), determinism (bit-identical metrics CSV at a fixed seed) and
// corruption rejection (checksums catch every mangled payload).
func TestChaosInvariantsHoldOnEveryPreset(t *testing.T) {
	for _, preset := range Presets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			rep, err := Run(preset, Options{Quick: testing.Short()})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range rep.Checks {
				if !c.Passed {
					t.Errorf("invariant %s failed: %s", c.Name, c.Detail)
				} else {
					t.Logf("invariant %s: %s", c.Name, c.Detail)
				}
			}
		})
	}
}

// TestEquivocationContrastDiverges re-asserts the safety invariant's two
// halves separately, so a regression points at the right half: the robust
// (median-contraction) run stays bounded AND the plain-averaging run under
// the same equivocating replica drifts past the contrast ratio.
func TestEquivocationContrastDiverges(t *testing.T) {
	sp, err := scenario.ByName("chaos-equivocate")
	if err != nil {
		t.Fatal(err)
	}
	sp = shrink(sp, 3)
	robust, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if robust.modelNorm > SafetyNormBound {
		t.Fatalf("median contraction drifted to %.3g under equivocation", robust.modelNorm)
	}
	contrast := sp
	contrast.ModelRule = "average"
	poisoned, err := execute(contrast)
	if err != nil {
		t.Fatal(err)
	}
	if poisoned.modelNorm < ContrastRatio*robust.modelNorm {
		t.Fatalf("averaging contraction norm %.3g vs robust %.3g: the equivocator should dominate the average",
			poisoned.modelNorm, robust.modelNorm)
	}
}

// TestDeterminismCSVBitIdentical locks the determinism property directly on
// the CSV artifact (the acceptance criterion's wording), plus its failure
// mode: different seeds must produce different curves, proving the
// comparison is not vacuous.
func TestDeterminismCSVBitIdentical(t *testing.T) {
	sp, err := scenario.ByName("chaos-equivocate")
	if err != nil {
		t.Fatal(err)
	}
	sp = shrink(sp, 3)
	a, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if a.metricsCSV() != b.metricsCSV() {
		t.Fatalf("same seed, different metrics CSV:\n%s\nvs\n%s", a.metricsCSV(), b.metricsCSV())
	}
	sp.Seed = sp.Seed + 1
	sp.Dataset.Seed = sp.Dataset.Seed + 1
	c, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if a.metricsCSV() == c.metricsCSV() {
		t.Fatal("different seeds produced identical metrics CSV; the determinism check is vacuous")
	}
}

// TestLivenessRecoversThroughPartitionHeal measures the liveness property's
// three segments explicitly: training continues during the partition (the
// q = n - f quorum absorbs the cut-off workers) and throughput recovers
// after the heal.
func TestLivenessRecoversThroughPartitionHeal(t *testing.T) {
	sp, err := scenario.ByName("chaos-partition-heal")
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		sp = shrink(sp, 3)
	}
	run, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.segments) != 3 {
		t.Fatalf("want 3 segments (pre, partitioned, healed), got %d", len(run.segments))
	}
	mid := run.segments[1]
	if mid.Result.Updates != mid.End-mid.Start {
		t.Fatalf("partitioned segment lost rounds: %d updates over [%d, %d)",
			mid.Result.Updates, mid.Start, mid.End)
	}
	pre, post := run.segments[0].Result.UpdatesPerSec(), run.segments[2].Result.UpdatesPerSec()
	if post < RecoveryRatio*pre {
		t.Fatalf("post-heal %.1f ups did not recover to %.0f%% of pre-fault %.1f ups",
			post, RecoveryRatio*100, pre)
	}
}

// TestJoinBootstrapConvergesUnderAttack asserts the elastic-membership
// acceptance story piece by piece: a replica bootstraps from the primary's
// checkpoint at the boundary where a partition heals, with two
// little-is-enough workers attacking throughout — no round is lost, the
// transition costs exactly one epoch, and the joiner ends within the spread
// bound of the honest fleet's model.
func TestJoinBootstrapConvergesUnderAttack(t *testing.T) {
	sp, err := scenario.ByName("chaos-join-bootstrap")
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		sp = shrink(sp, 3)
	}
	run, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if run.updates() != sp.Iterations {
		t.Fatalf("updates = %d, want %d: the partition and the join must not cost rounds", run.updates(), sp.Iterations)
	}
	if run.epoch != 1 || run.servers != sp.NPS+1 {
		t.Fatalf("epoch %d, %d replicas; want epoch 1 and %d replicas", run.epoch, run.servers, sp.NPS+1)
	}
	if run.spread > JoinSpreadBound {
		t.Fatalf("bootstrapped replica ended %v from the fleet, want <= %v", run.spread, JoinSpreadBound)
	}
}

// TestChurnSweepBitIdenticalPerSeed pins the determinism half of the churn
// acceptance criterion directly: two deterministic runs through the full
// join/leave/scale schedule at the same seed produce bit-identical metrics
// CSV, the same final model norm, and the same epoch trajectory.
func TestChurnSweepBitIdenticalPerSeed(t *testing.T) {
	sp, err := scenario.ByName("chaos-churn-attack")
	if err != nil {
		t.Fatal(err)
	}
	sp = shrink(sp, 3)
	a, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if a.metricsCSV() != b.metricsCSV() {
		t.Fatalf("same seed, different metrics CSV through churn:\n%s\nvs\n%s", a.metricsCSV(), b.metricsCSV())
	}
	if a.modelNorm != b.modelNorm || a.epoch != b.epoch || a.workers != b.workers {
		t.Fatalf("churn replay diverged: norm %v/%v epoch %d/%d workers %d/%d",
			a.modelNorm, b.modelNorm, a.epoch, b.epoch, a.workers, b.workers)
	}
}

// TestShardOwnerCrashRecoveryIntegrity asserts the sharded no-torn-writes
// acceptance story piece by piece: a shard-owning replica crashes mid-run and
// recovers later; its shards fail over (counted) without losing a round, every
// committed round is a full-coordinate write, and the recovered replica's
// segment aborts nothing.
func TestShardOwnerCrashRecoveryIntegrity(t *testing.T) {
	sp, err := scenario.ByName("chaos-shard-crash")
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		sp = shrink(sp, 3)
	}
	run, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if run.updates() != sp.Iterations {
		t.Fatalf("updates = %d, want %d: failover must not cost rounds", run.updates(), sp.Iterations)
	}
	if len(run.segments) != 3 {
		t.Fatalf("want 3 segments (healthy, crashed, recovered), got %d", len(run.segments))
	}
	crashed := run.segments[1].Result
	if crashed.ShardFailovers == 0 {
		t.Fatal("crashed-owner segment counted no shard failovers")
	}
	recovered := run.segments[2].Result
	if recovered.ShardAborts != 0 || recovered.ShardRounds != recovered.Updates {
		t.Fatalf("post-recovery segment: rounds=%d aborts=%d updates=%d",
			recovered.ShardRounds, recovered.ShardAborts, recovered.Updates)
	}
	if c := checkShardIntegrity(sp, run); !c.Passed {
		t.Fatalf("shard-integrity: %s", c.Detail)
	}
}

// TestRunRejectsUnknownPreset pins the harness error path.
func TestRunRejectsUnknownPreset(t *testing.T) {
	if _, err := Run("chaos-imaginary", Options{}); err == nil ||
		!strings.Contains(err.Error(), "unknown chaos preset") {
		t.Fatalf("err = %v", err)
	}
}

// TestShrinkKeepsSchedulesValid: quick mode must never produce a spec whose
// fault schedule fails validation.
func TestShrinkKeepsSchedulesValid(t *testing.T) {
	for _, preset := range Presets() {
		sp, err := scenario.ByName(preset)
		if err != nil {
			t.Fatal(err)
		}
		small := shrink(sp, 3)
		if err := small.Validate(); err != nil {
			t.Fatalf("%s shrunk spec invalid: %v", preset, err)
		}
		tiny := shrink(sp, 1000)
		if err := tiny.Validate(); err != nil {
			t.Fatalf("%s degenerate shrink invalid: %v", preset, err)
		}
	}
}
