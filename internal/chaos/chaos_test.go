package chaos

import (
	"strings"
	"testing"

	"garfield/internal/scenario"
)

// TestChaosInvariantsHoldOnEveryPreset is the acceptance suite of the chaos
// engine: every preset's machine-checked resilience properties must hold —
// safety (bounded honest-model drift under <= f/fs adversaries, with the
// plain-averaging contrast diverging), liveness (post-heal throughput
// recovery), determinism (bit-identical metrics CSV at a fixed seed) and
// corruption rejection (checksums catch every mangled payload).
func TestChaosInvariantsHoldOnEveryPreset(t *testing.T) {
	for _, preset := range Presets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			rep, err := Run(preset, Options{Quick: testing.Short()})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range rep.Checks {
				if !c.Passed {
					t.Errorf("invariant %s failed: %s", c.Name, c.Detail)
				} else {
					t.Logf("invariant %s: %s", c.Name, c.Detail)
				}
			}
		})
	}
}

// TestEquivocationContrastDiverges re-asserts the safety invariant's two
// halves separately, so a regression points at the right half: the robust
// (median-contraction) run stays bounded AND the plain-averaging run under
// the same equivocating replica drifts past the contrast ratio.
func TestEquivocationContrastDiverges(t *testing.T) {
	sp, err := scenario.ByName("chaos-equivocate")
	if err != nil {
		t.Fatal(err)
	}
	sp = shrink(sp, 3)
	robust, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if robust.modelNorm > SafetyNormBound {
		t.Fatalf("median contraction drifted to %.3g under equivocation", robust.modelNorm)
	}
	contrast := sp
	contrast.ModelRule = "average"
	poisoned, err := execute(contrast)
	if err != nil {
		t.Fatal(err)
	}
	if poisoned.modelNorm < ContrastRatio*robust.modelNorm {
		t.Fatalf("averaging contraction norm %.3g vs robust %.3g: the equivocator should dominate the average",
			poisoned.modelNorm, robust.modelNorm)
	}
}

// TestDeterminismCSVBitIdentical locks the determinism property directly on
// the CSV artifact (the acceptance criterion's wording), plus its failure
// mode: different seeds must produce different curves, proving the
// comparison is not vacuous.
func TestDeterminismCSVBitIdentical(t *testing.T) {
	sp, err := scenario.ByName("chaos-equivocate")
	if err != nil {
		t.Fatal(err)
	}
	sp = shrink(sp, 3)
	a, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if a.metricsCSV() != b.metricsCSV() {
		t.Fatalf("same seed, different metrics CSV:\n%s\nvs\n%s", a.metricsCSV(), b.metricsCSV())
	}
	sp.Seed = sp.Seed + 1
	sp.Dataset.Seed = sp.Dataset.Seed + 1
	c, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if a.metricsCSV() == c.metricsCSV() {
		t.Fatal("different seeds produced identical metrics CSV; the determinism check is vacuous")
	}
}

// TestLivenessRecoversThroughPartitionHeal measures the liveness property's
// three segments explicitly: training continues during the partition (the
// q = n - f quorum absorbs the cut-off workers) and throughput recovers
// after the heal.
func TestLivenessRecoversThroughPartitionHeal(t *testing.T) {
	sp, err := scenario.ByName("chaos-partition-heal")
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		sp = shrink(sp, 3)
	}
	run, err := execute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.segments) != 3 {
		t.Fatalf("want 3 segments (pre, partitioned, healed), got %d", len(run.segments))
	}
	mid := run.segments[1]
	if mid.Result.Updates != mid.End-mid.Start {
		t.Fatalf("partitioned segment lost rounds: %d updates over [%d, %d)",
			mid.Result.Updates, mid.Start, mid.End)
	}
	pre, post := run.segments[0].Result.UpdatesPerSec(), run.segments[2].Result.UpdatesPerSec()
	if post < RecoveryRatio*pre {
		t.Fatalf("post-heal %.1f ups did not recover to %.0f%% of pre-fault %.1f ups",
			post, RecoveryRatio*100, pre)
	}
}

// TestRunRejectsUnknownPreset pins the harness error path.
func TestRunRejectsUnknownPreset(t *testing.T) {
	if _, err := Run("chaos-imaginary", Options{}); err == nil ||
		!strings.Contains(err.Error(), "unknown chaos preset") {
		t.Fatalf("err = %v", err)
	}
}

// TestShrinkKeepsSchedulesValid: quick mode must never produce a spec whose
// fault schedule fails validation.
func TestShrinkKeepsSchedulesValid(t *testing.T) {
	for _, preset := range Presets() {
		sp, err := scenario.ByName(preset)
		if err != nil {
			t.Fatal(err)
		}
		small := shrink(sp, 3)
		if err := small.Validate(); err != nil {
			t.Fatalf("%s shrunk spec invalid: %v", preset, err)
		}
		tiny := shrink(sp, 1000)
		if err := tiny.Validate(); err != nil {
			t.Fatalf("%s degenerate shrink invalid: %v", preset, err)
		}
	}
}
