// Package chaos is the invariant-checking harness of the chaos engine: it
// runs scenario specs under seeded fault programs (network partitions,
// link corruption and reordering, Byzantine server replicas) and asserts
// machine-checkable resilience properties instead of eyeballing accuracy
// curves:
//
//   - safety: under at most f Byzantine workers / fs Byzantine servers, the
//     honest replicas' model stays bounded — and the same adversary against
//     a non-robust contraction (model_rule=average) visibly diverges, so
//     the bound is evidence of the defense, not of a weak adversary;
//   - liveness: training survives the fault window, and after a heal the
//     steps/sec recovers to at least RecoveryRatio of the pre-fault rate;
//   - determinism: two runs at the same seed emit bit-identical metrics
//     CSV, making every chaos finding replayable from (preset, seed);
//   - corruption-rejected: payloads mangled by a corrupt link are rejected
//     by the RPC checksum layer (counted), never silently aggregated.
//
// The harness is a library (the package tests prove the properties in CI)
// and a CLI: `garfield-scenarios chaos` runs the same suites, and the
// "chaos" experiment renders them as a table.
package chaos

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"garfield/internal/core"
	"garfield/internal/gar"
	"garfield/internal/metrics"
	"garfield/internal/rpc"
	"garfield/internal/scenario"
)

// Tunable invariant thresholds. They are deliberately loose: the point is
// catching divergence, stalls and silent poisoning, not benchmarking.
const (
	// SafetyNormBound is the honest-model L2 norm a robust run must stay
	// under at the end of a chaos preset (trained models on the demo tasks
	// sit well below it).
	SafetyNormBound = 10.0
	// ContrastRatio is how much larger the non-robust contrast run's final
	// norm must be before we call the adversary "defended against" rather
	// than "harmless".
	ContrastRatio = 2.0
	// RecoveryRatio is the minimum post-heal / pre-fault steps-per-second
	// ratio of the liveness invariant. The churn-liveness invariant reuses
	// it for the post-stabilization / pre-churn ratio.
	RecoveryRatio = 0.8
	// JoinSpreadBound is the largest L2 distance a just-bootstrapped
	// replica may end from the rest of the honest fleet for the
	// join-converges invariant to hold (the model contraction should pull
	// it far below this).
	JoinSpreadBound = 1.0
)

// Options tunes a harness run.
type Options struct {
	// Quick divides iteration counts (and fault boundaries) by three so
	// the whole suite runs in seconds; properties are asserted either way.
	Quick bool
	// Seed overrides the preset seed when non-zero (both runs of the
	// determinism invariant use the same value).
	Seed uint64
}

// Check is one invariant's verdict.
type Check struct {
	// Name is the invariant: safety, liveness, determinism,
	// corruption-rejected or completes.
	Name string
	// Passed reports the verdict.
	Passed bool
	// Detail is the measured evidence ("post-heal 812.3 ups vs pre 845.1").
	Detail string
}

// Report is one preset's harness outcome.
type Report struct {
	// Preset is the scenario preset the suite ran.
	Preset string
	// Checks are the invariant verdicts.
	Checks []Check
	// FinalAccuracy and Updates summarize the primary run.
	FinalAccuracy float64
	Updates       int
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Passed {
			return false
		}
	}
	return true
}

// suite names the invariants each chaos preset is checked against.
var suites = map[string][]string{
	"chaos-equivocate":      {"completes", "safety", "determinism"},
	"chaos-byz-flip":        {"completes", "safety", "determinism"},
	"chaos-partition-heal":  {"completes", "liveness"},
	"chaos-corrupt-link":    {"completes", "safety", "corruption-rejected"},
	"chaos-reorder":         {"completes", "safety"},
	"chaos-churn-attack":    {"completes", "safety", "membership", "churn-liveness", "determinism"},
	"chaos-join-bootstrap":  {"completes", "safety", "membership", "join-converges"},
	"chaos-shard-crash":     {"completes", "safety", "shard-integrity", "determinism"},
	"chaos-shard-partition": {"safety", "shard-integrity", "liveness"},
}

// Presets returns the chaos preset names the harness knows, in a stable
// order (the scenario registry holds the specs themselves).
func Presets() []string {
	return []string{"chaos-equivocate", "chaos-byz-flip",
		"chaos-partition-heal", "chaos-corrupt-link", "chaos-reorder",
		"chaos-churn-attack", "chaos-join-bootstrap",
		"chaos-shard-crash", "chaos-shard-partition"}
}

// Run executes one chaos preset's invariant suite.
func Run(preset string, opt Options) (*Report, error) {
	checks, ok := suites[preset]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown chaos preset %q (known: %v)", preset, Presets())
	}
	sp, err := scenario.ByName(preset)
	if err != nil {
		return nil, err
	}
	if opt.Seed != 0 {
		sp.Seed = opt.Seed
	}
	if opt.Quick {
		sp = shrink(sp, 3)
	}

	rejectsBefore := rpc.ChecksumRejects()
	run, err := execute(sp)
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", preset, err)
	}
	rejectsDelta := rpc.ChecksumRejects() - rejectsBefore

	rep := &Report{
		Preset:        preset,
		FinalAccuracy: run.finalAccuracy(),
		Updates:       run.updates(),
	}
	for _, name := range checks {
		var c Check
		switch name {
		case "completes":
			c = checkCompletes(sp, run)
		case "safety":
			c = checkSafety(sp, run)
		case "liveness":
			c = checkLiveness(sp, run)
			// The liveness invariant compares wall-clock throughput of
			// millisecond-scale segments, which a GC pause or a noisy CI
			// neighbor can distort with no code defect. A transient miss
			// is re-measured on a fresh run (the property claims the
			// system *can* recover, not that every scheduling of one run
			// is noise-free) before the verdict sticks.
			for attempt := 0; !c.Passed && attempt < 2; attempt++ {
				again, err := execute(sp)
				if err != nil {
					break
				}
				c = checkLiveness(sp, again)
			}
		case "determinism":
			c = checkDeterminism(sp, run)
		case "corruption-rejected":
			c = checkCorruptionRejected(run, rejectsDelta)
		case "membership":
			c = checkMembership(sp, run)
		case "churn-liveness":
			c = checkChurnLiveness(sp, run)
			// Same wall-clock caveat as liveness: re-measure a transient
			// throughput miss on a fresh run before the verdict sticks.
			for attempt := 0; !c.Passed && attempt < 2; attempt++ {
				again, err := execute(sp)
				if err != nil {
					break
				}
				c = checkChurnLiveness(sp, again)
			}
		case "join-converges":
			c = checkJoinConverges(run)
		case "shard-integrity":
			c = checkShardIntegrity(sp, run)
		}
		rep.Checks = append(rep.Checks, c)
	}
	return rep, nil
}

// RunAll executes every chaos preset's suite.
func RunAll(opt Options) ([]*Report, error) {
	var out []*Report
	for _, preset := range Presets() {
		rep, err := Run(preset, opt)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// shrink divides the run length and fault boundaries by k for quick mode,
// preserving boundary order and validity.
func shrink(sp scenario.Spec, k int) scenario.Spec {
	iters := sp.Iterations / k
	if iters < 6 {
		iters = 6
	}
	sp.Iterations = iters
	for i := range sp.Faults {
		after := sp.Faults[i].After / k
		if after < 1 {
			after = 1
		}
		if after >= iters {
			after = iters - 1
		}
		sp.Faults[i].After = after
	}
	return sp
}

// runOutcome bundles one executed spec: its per-segment results, the honest
// model norm at the end, the final membership roster, and the corruption
// stats of any chaos links.
type runOutcome struct {
	segments  []scenario.Segment
	modelNorm float64
	corrupted uint64 // frames the link programs corrupted

	// Final roster state, read before the cluster closes: the membership
	// epoch, the active fleet counts, and the largest L2 distance between
	// live honest replicas' models (the join-converges evidence).
	epoch            uint64
	workers, servers int
	spread           float64
}

func (r *runOutcome) updates() int {
	n := 0
	for _, seg := range r.segments {
		n += seg.Result.Updates
	}
	return n
}

func (r *runOutcome) finalAccuracy() float64 {
	for i := len(r.segments) - 1; i >= 0; i-- {
		if pts := r.segments[i].Result.Accuracy.Points; len(pts) > 0 {
			return pts[len(pts)-1].Y
		}
	}
	return 0
}

// metricsCSV renders the run's accuracy-vs-iteration curve as CSV with full
// float precision — the artifact the determinism invariant byte-compares.
func (r *runOutcome) metricsCSV() string {
	var b strings.Builder
	b.WriteString("iteration,accuracy\n")
	for _, seg := range r.segments {
		for _, p := range seg.Result.Accuracy.Points {
			b.WriteString(strconv.FormatFloat(p.X+float64(seg.Start), 'g', -1, 64))
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(p.Y, 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// execute materializes and drives one spec, collecting the outcome.
func execute(sp scenario.Spec) (*runOutcome, error) {
	c, err := scenario.NewCluster(sp)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	segments, err := scenario.RunSegmented(c, sp)
	if err != nil {
		return nil, err
	}
	ro := c.Roster()
	out := &runOutcome{
		segments:  segments,
		modelNorm: c.Server(0).Params().Norm(),
		epoch:     ro.Epoch,
		workers:   ro.NW(),
		servers:   ro.NPS(),
		spread:    c.ModelSpread(),
	}
	for i := 0; i < sp.NW; i++ {
		out.corrupted += c.WorkerLinkStats(i).Corrupted
	}
	nps := sp.NPS
	if sp.Topology == scenario.TopoDecentralized {
		nps = sp.NW
	}
	for i := 0; i < nps; i++ {
		out.corrupted += c.ServerLinkStats(i).Corrupted
	}
	return out, nil
}

// checkCompletes: every scheduled iteration produced a model update — the
// fault program cost freshness or peers, never rounds.
func checkCompletes(sp scenario.Spec, run *runOutcome) Check {
	got := run.updates()
	return Check{
		Name:   "completes",
		Passed: got == sp.Iterations,
		Detail: fmt.Sprintf("%d/%d iterations updated the model", got, sp.Iterations),
	}
}

// checkSafety: the honest model norm is finite and bounded, and the same
// adversary against a plain-averaging model contraction (the non-robust
// contrast) diverges past ContrastRatio x the robust norm. Presets without
// a server-side adversary skip the contrast (the bound alone is the claim).
func checkSafety(sp scenario.Spec, run *runOutcome) Check {
	if math.IsNaN(run.modelNorm) || math.IsInf(run.modelNorm, 0) || run.modelNorm > SafetyNormBound {
		return Check{Name: "safety", Passed: false,
			Detail: fmt.Sprintf("honest model norm %.3g exceeds bound %.3g", run.modelNorm, SafetyNormBound)}
	}
	if !hasServerAdversary(sp) {
		return Check{Name: "safety", Passed: true,
			Detail: fmt.Sprintf("honest model norm %.3g <= %.3g", run.modelNorm, SafetyNormBound)}
	}
	contrast := sp
	contrast.ModelRule = gar.NameAverage
	contrastRun, err := execute(contrast)
	if err != nil {
		return Check{Name: "safety", Passed: false,
			Detail: fmt.Sprintf("contrast run (model_rule=average) failed: %v", err)}
	}
	needed := ContrastRatio * run.modelNorm
	if run.modelNorm == 0 {
		needed = ContrastRatio
	}
	diverged := math.IsNaN(contrastRun.modelNorm) || math.IsInf(contrastRun.modelNorm, 0) ||
		contrastRun.modelNorm >= needed
	return Check{
		Name:   "safety",
		Passed: diverged,
		Detail: fmt.Sprintf("robust norm %.3g <= %.3g; averaging contrast norm %.3g (needs >= %.3g to prove the adversary bites)",
			run.modelNorm, SafetyNormBound, contrastRun.modelNorm, needed),
	}
}

// hasServerAdversary reports whether the spec fields a Byzantine server
// (initial mode or scheduled byz-server flip) the contrast run can expose.
func hasServerAdversary(sp scenario.Spec) bool {
	if sp.ServerByzMode != "" && sp.ServerByzMode != core.ByzModeHonest {
		return true
	}
	for _, flt := range sp.Faults {
		if flt.Kind == scenario.FaultByzServer && flt.Mode != "" && flt.Mode != core.ByzModeHonest {
			return true
		}
	}
	return false
}

// checkLiveness compares steps/sec across the fault window: the segment
// after the last heal must reach RecoveryRatio of the segment before the
// first fault.
func checkLiveness(sp scenario.Spec, run *runOutcome) Check {
	if len(run.segments) < 3 {
		return Check{Name: "liveness", Passed: false,
			Detail: fmt.Sprintf("need pre-fault, faulted and healed segments; got %d", len(run.segments))}
	}
	pre := run.segments[0].Result.UpdatesPerSec()
	post := run.segments[len(run.segments)-1].Result.UpdatesPerSec()
	if pre <= 0 {
		return Check{Name: "liveness", Passed: false, Detail: "pre-fault segment measured no throughput"}
	}
	ratio := post / pre
	return Check{
		Name:   "liveness",
		Passed: ratio >= RecoveryRatio,
		Detail: fmt.Sprintf("post-heal %.1f ups vs pre-fault %.1f ups (ratio %.2f, needs >= %.2f)",
			post, pre, ratio, RecoveryRatio),
	}
}

// checkDeterminism re-executes the spec at the same seed and byte-compares
// the metrics CSV of both runs.
func checkDeterminism(sp scenario.Spec, run *runOutcome) Check {
	again, err := execute(sp)
	if err != nil {
		return Check{Name: "determinism", Passed: false, Detail: fmt.Sprintf("replay failed: %v", err)}
	}
	a, b := run.metricsCSV(), again.metricsCSV()
	if a != b {
		return Check{Name: "determinism", Passed: false,
			Detail: fmt.Sprintf("metrics CSV differs across runs at seed %d (%d vs %d bytes)", sp.Seed, len(a), len(b))}
	}
	sameNorm := run.modelNorm == again.modelNorm
	return Check{
		Name:   "determinism",
		Passed: sameNorm,
		Detail: fmt.Sprintf("two runs at seed %d: identical %d-byte metrics CSV, model norm %.17g (replay %.17g)",
			sp.Seed, len(a), run.modelNorm, again.modelNorm),
	}
}

// ReportTable renders invariant verdicts as the shared {preset, invariant,
// verdict, evidence} table both the CLI and the chaos experiment print.
// failed reports how many invariants did not hold.
func ReportTable(title string, reports []*Report) (t *metrics.Table, failed int) {
	t = &metrics.Table{
		Title:  title,
		Header: []string{"preset", "invariant", "verdict", "evidence"},
	}
	for _, rep := range reports {
		for _, c := range rep.Checks {
			verdict := "PASS"
			if !c.Passed {
				verdict = "FAIL"
				failed++
			}
			t.AddRow(rep.Preset, c.Name, verdict, c.Detail)
		}
	}
	return t, failed
}

// churnExpectations folds the spec's fault schedule into the membership
// outcome it promises: the number of epoch transitions (one per churn
// fault, batch scale included) and the final active fleet counts.
func churnExpectations(sp scenario.Spec) (transitions, workers, servers int) {
	workers = sp.NW
	switch sp.Topology {
	case scenario.TopoDecentralized:
		servers = sp.NW
	default:
		servers = sp.NPS
		if servers == 0 {
			servers = 1 // single-server topologies materialize one replica
		}
	}
	for _, flt := range sp.Faults {
		n := 0
		switch flt.Kind {
		case scenario.FaultJoin:
			n = 1
		case scenario.FaultLeave:
			n = -1
		case scenario.FaultScale:
			n = flt.Delta
		default:
			continue
		}
		transitions++
		if flt.Target == "server" {
			servers += n
		} else {
			workers += n
		}
	}
	return transitions, workers, servers
}

// checkMembership: every churn fault cost exactly one epoch transition
// (batch scale is one epoch, crash recovery is none), and the final active
// fleet matches the schedule's net delta — no ghost members, no lost slots.
func checkMembership(sp scenario.Spec, run *runOutcome) Check {
	transitions, workers, servers := churnExpectations(sp)
	ok := run.epoch == uint64(transitions) &&
		run.workers == workers && run.servers == servers
	return Check{
		Name:   "membership",
		Passed: ok,
		Detail: fmt.Sprintf("epoch %d after %d churn faults; fleet %dw/%ds (schedule promises %dw/%ds)",
			run.epoch, transitions, run.workers, run.servers, workers, servers),
	}
}

// checkChurnLiveness: throughput after the last membership transition
// recovers to RecoveryRatio of the pre-churn segment — joins, drains and
// rebinding fetch queues cost a transition blip, not sustained rate.
func checkChurnLiveness(sp scenario.Spec, run *runOutcome) Check {
	if len(run.segments) < 2 {
		return Check{Name: "churn-liveness", Passed: false,
			Detail: fmt.Sprintf("need pre-churn and post-churn segments; got %d", len(run.segments))}
	}
	pre := run.segments[0].Result.UpdatesPerSec()
	post := run.segments[len(run.segments)-1].Result.UpdatesPerSec()
	if pre <= 0 {
		return Check{Name: "churn-liveness", Passed: false, Detail: "pre-churn segment measured no throughput"}
	}
	ratio := post / pre
	return Check{
		Name:   "churn-liveness",
		Passed: ratio >= RecoveryRatio,
		Detail: fmt.Sprintf("post-churn %.1f ups vs pre-churn %.1f ups (ratio %.2f, needs >= %.2f)",
			post, pre, ratio, RecoveryRatio),
	}
}

// checkJoinConverges: the replica that bootstrapped from a checkpoint ends
// the run within JoinSpreadBound of every other live honest replica — the
// checkpoint plus the model contraction absorbed it into the fleet.
func checkJoinConverges(run *runOutcome) Check {
	if run.servers < 2 {
		return Check{Name: "join-converges", Passed: false,
			Detail: fmt.Sprintf("need >= 2 live replicas to measure spread; got %d", run.servers)}
	}
	if math.IsNaN(run.spread) || math.IsInf(run.spread, 0) || run.spread > JoinSpreadBound {
		return Check{Name: "join-converges", Passed: false,
			Detail: fmt.Sprintf("honest replica spread %.3g exceeds %.3g across %d replicas", run.spread, JoinSpreadBound, run.servers)}
	}
	return Check{
		Name:   "join-converges",
		Passed: true,
		Detail: fmt.Sprintf("max honest replica spread %.3g <= %.3g across %d replicas", run.spread, JoinSpreadBound, run.servers),
	}
}

// checkShardIntegrity: the sharded protocol's all-or-abort contract held
// across the fault program — every scheduled iteration either committed a
// full-coordinate reassembled model (counted in ShardRounds and Updates) or
// aborted before any write (ShardAborts), with nothing in between, and the
// surviving model is finite (a torn reassembly would have tripped the
// runner's NaN sweep or left a poisoned norm).
func checkShardIntegrity(sp scenario.Spec, run *runOutcome) Check {
	rounds, aborts, failovers, updates := 0, 0, 0, 0
	for _, seg := range run.segments {
		rounds += seg.Result.ShardRounds
		aborts += seg.Result.ShardAborts
		failovers += seg.Result.ShardFailovers
		updates += seg.Result.Updates
	}
	switch {
	case rounds+aborts != sp.Iterations:
		return Check{Name: "shard-integrity", Passed: false,
			Detail: fmt.Sprintf("%d committed + %d aborted rounds != %d scheduled iterations (a round vanished)",
				rounds, aborts, sp.Iterations)}
	case updates != rounds:
		return Check{Name: "shard-integrity", Passed: false,
			Detail: fmt.Sprintf("%d model updates != %d committed rounds (a write escaped the all-or-abort gate)",
				updates, rounds)}
	case math.IsNaN(run.modelNorm) || math.IsInf(run.modelNorm, 0):
		return Check{Name: "shard-integrity", Passed: false,
			Detail: fmt.Sprintf("surviving model norm %v is not finite (torn reassembly)", run.modelNorm)}
	}
	return Check{
		Name:   "shard-integrity",
		Passed: true,
		Detail: fmt.Sprintf("%d committed + %d aborted = %d rounds, %d failovers, no torn writes (norm %.3g)",
			rounds, aborts, sp.Iterations, failovers, run.modelNorm),
	}
}

// checkCorruptionRejected: the link program provably mangled frames, and the
// RPC layer provably rejected checksum-failing payloads — no silent
// poisoning path exists between the two.
func checkCorruptionRejected(run *runOutcome, rejects uint64) Check {
	if run.corrupted == 0 {
		return Check{Name: "corruption-rejected", Passed: false,
			Detail: "the corrupt-link program mangled no frames (fault not injected?)"}
	}
	if rejects == 0 {
		return Check{Name: "corruption-rejected", Passed: false,
			Detail: fmt.Sprintf("%d frames corrupted but zero checksum rejections recorded", run.corrupted)}
	}
	return Check{
		Name:   "corruption-rejected",
		Passed: true,
		Detail: fmt.Sprintf("%d frames corrupted in flight, %d checksum rejections at the RPC layer", run.corrupted, rejects),
	}
}
