package gar

import (
	"fmt"
	"math"

	"garfield/internal/tensor"
)

// This file implements the variance-condition check behind the paper's
// measure_variance.py tool (Section 3.1). A GAR's Byzantine-resilience proof
// holds only when, at every step,
//
//	kappa * Delta(GAR) * sqrt(E ||g_i - E g_i||^2)  <=  ||grad L(theta)||
//
// for some kappa > 1, where Delta depends on the rule and on (n, f):
//
//	MDA:    2*sqrt(2)*f / (n-f)
//	Krum:   sqrt(2*( n-f + (f*(n-f-2) + f^2*(n-f-1)) / (n-2f-2) ))
//	Median: sqrt(n-f)
//
// VarianceChecker estimates the left-hand side empirically from a set of
// worker gradients and the right-hand side from a large-batch "true" gradient
// estimate, and reports whether the condition held.

// DeltaFactor returns the Delta multiplier of the named GAR for a deployment
// with n workers of which f may be Byzantine. Only the three rules for which
// the paper states the bound are supported.
func DeltaFactor(name string, n, f int) (float64, error) {
	nf := float64(n - f)
	ff := float64(f)
	switch name {
	case NameMDA:
		if n <= f {
			return 0, fmt.Errorf("%w: mda delta needs n > f", ErrRequirement)
		}
		return 2 * math.Sqrt2 * ff / nf, nil
	case NameKrum, NameMultiKrum:
		den := float64(n - 2*f - 2)
		if den <= 0 {
			return 0, fmt.Errorf("%w: krum delta needs n > 2f+2", ErrRequirement)
		}
		inner := nf + (ff*(nf-2)+ff*ff*(nf-1))/den
		return math.Sqrt(2 * inner), nil
	case NameMedian:
		if n <= f {
			return 0, fmt.Errorf("%w: median delta needs n > f", ErrRequirement)
		}
		return math.Sqrt(nf), nil
	default:
		return 0, fmt.Errorf("%w: no variance bound for %q", ErrUnknownRule, name)
	}
}

// VarianceReport summarizes one step's variance-condition measurement.
type VarianceReport struct {
	// StdDev is sqrt(E ||g_i - mean||^2), the empirical gradient standard
	// deviation across workers.
	StdDev float64
	// TrueGradNorm is ||grad L||, estimated from the large-batch gradient.
	TrueGradNorm float64
	// Ratio is TrueGradNorm / (Delta * StdDev); the condition holds with
	// kappa = Ratio when Ratio > 1.
	Ratio float64
	// Satisfied reports Ratio > 1.
	Satisfied bool
}

// CheckVarianceCondition evaluates the condition for one training step given
// the per-worker gradient estimates and a high-precision estimate of the true
// gradient (computed with a much larger batch, as the paper's tool does).
func CheckVarianceCondition(name string, f int, workerGrads []tensor.Vector, trueGrad tensor.Vector) (VarianceReport, error) {
	n := len(workerGrads)
	if n == 0 {
		return VarianceReport{}, tensor.ErrEmpty
	}
	delta, err := DeltaFactor(name, n, f)
	if err != nil {
		return VarianceReport{}, err
	}
	mean, err := tensor.Mean(workerGrads)
	if err != nil {
		return VarianceReport{}, err
	}
	var sumSq float64
	for _, g := range workerGrads {
		d2, err := g.SquaredDistance(mean)
		if err != nil {
			return VarianceReport{}, err
		}
		sumSq += d2
	}
	std := math.Sqrt(sumSq / float64(n))
	norm := trueGrad.Norm()
	var ratio float64
	if delta*std > 0 {
		ratio = norm / (delta * std)
	} else {
		ratio = math.Inf(1)
	}
	return VarianceReport{
		StdDev:       std,
		TrueGradNorm: norm,
		Ratio:        ratio,
		Satisfied:    ratio > 1,
	}, nil
}
