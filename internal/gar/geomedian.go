package gar

import (
	"fmt"
	"math"
	"sync"

	"garfield/internal/tensor"
)

// GeoMedian approximates the geometric median — arg min_y sum_i ||y - g_i||
// — with smoothed Weiszfeld iterations, the robust aggregator of the RFA
// line of work the paper's related-work section points to. It is not part of
// the paper's evaluated set; it is included (with Phocas) to demonstrate the
// claim that "Garfield can straightforwardly include the other [GARs]".
// It requires n >= 2f+1.
type GeoMedian struct {
	n, f int

	// iters bounds the Weiszfeld fixed-point iterations; eps smooths the
	// per-point weights 1/max(||y-g_i||, eps) so collocated points cannot
	// divide by zero.
	iters int
	eps   float64

	mu      sync.Mutex
	init    *Median       // robust starting point, constructed once
	y, next tensor.Vector // iteration buffers, reused across calls
}

var _ Rule = (*GeoMedian)(nil)

// NewGeoMedian returns a geometric-median rule over n inputs tolerating f
// Byzantine ones, with default smoothing and iteration budget.
func NewGeoMedian(n, f int) (*GeoMedian, error) {
	if f < 0 || n < 2*f+1 {
		return nil, fmt.Errorf("%w: geomedian needs n >= 2f+1, got n=%d f=%d", ErrRequirement, n, f)
	}
	init, err := NewMedian(n, 0)
	if err != nil {
		return nil, fmt.Errorf("gar: geomedian: %w", err)
	}
	return &GeoMedian{n: n, f: f, iters: 32, eps: 1e-9, init: init}, nil
}

// Name implements Rule.
func (g *GeoMedian) Name() string { return NameGeoMedian }

// N implements Rule.
func (g *GeoMedian) N() int { return g.n }

// F implements Rule.
func (g *GeoMedian) F() int { return g.f }

// Aggregate implements Rule.
func (g *GeoMedian) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	return g.AggregateInto(nil, inputs)
}

// AggregateInto implements Rule.
func (g *GeoMedian) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(g, inputs)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// Start from the coordinate-wise median — a robust initial point that
	// keeps far-away Byzantine vectors from dominating the early
	// iterations — and refine with Weiszfeld:
	// y <- (sum_i w_i g_i) / (sum_i w_i), w_i = 1 / max(||y - g_i||, eps).
	// The iteration ping-pongs between two rule-owned buffers; the Median
	// rule serializes shared state internally.
	y, err := g.init.AggregateInto(g.y, inputs)
	if err != nil {
		return nil, fmt.Errorf("gar: geomedian: %w", err)
	}
	next := tensor.Resize(g.next, d)
	for it := 0; it < g.iters; it++ {
		var wSum float64
		for i := range next {
			next[i] = 0
		}
		for _, v := range inputs {
			dist, err := y.Distance(v)
			if err != nil {
				return nil, fmt.Errorf("gar: geomedian: %w", err)
			}
			w := 1 / math.Max(dist, g.eps)
			wSum += w
			for c := range next {
				next[c] += w * v[c]
			}
		}
		moved := 0.0
		inv := 1 / wSum
		for c := range next {
			next[c] *= inv
			delta := next[c] - y[c]
			moved += delta * delta
		}
		y, next = next, y
		if moved < g.eps*g.eps {
			break
		}
	}
	g.y, g.next = y, next
	dst = tensor.Resize(dst, d)
	copy(dst, y)
	return dst, nil
}
