package gar

import (
	"fmt"

	"garfield/internal/tensor"
)

// Krum (Blanchard et al., NeurIPS 2017) assigns each input a score equal to
// the sum of squared distances to its n-f-2 closest neighbours and returns
// the input with the smallest score. It requires n >= 2f+3.
type Krum struct {
	n, f int
	s    *arena
}

var _ Rule = (*Krum)(nil)

// NewKrum returns a Krum rule over n inputs tolerating f Byzantine ones.
func NewKrum(n, f int) (*Krum, error) {
	if f < 0 || n < 2*f+3 {
		return nil, fmt.Errorf("%w: krum needs n >= 2f+3, got n=%d f=%d", ErrRequirement, n, f)
	}
	return &Krum{n: n, f: f, s: newArena(n)}, nil
}

// Name implements Rule.
func (k *Krum) Name() string { return NameKrum }

// N implements Rule.
func (k *Krum) N() int { return k.n }

// F implements Rule.
func (k *Krum) F() int { return k.f }

// Aggregate implements Rule.
func (k *Krum) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	return k.AggregateInto(nil, inputs)
}

// AggregateInto implements Rule.
func (k *Krum) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(k, inputs)
	if err != nil {
		return nil, err
	}
	k.s.mu.Lock()
	defer k.s.mu.Unlock()
	k.s.computeDistances(inputs, d)
	k.s.krumScoresInto(k.f)
	scores := k.s.scores
	best := 0
	for i, s := range scores {
		if s < scores[best] {
			best = i
		}
	}
	dst = tensor.Resize(dst, d)
	copy(dst, inputs[best])
	return dst, nil
}

// MultiKrum generalizes Krum by averaging the m best-scoring inputs
// (m = n - f by default), achieving a better convergence rate than Krum as
// reported in the AggregaThor paper. It requires n >= 2f+3.
type MultiKrum struct {
	n, f, m int
	s       *arena
}

var _ Rule = (*MultiKrum)(nil)

// NewMultiKrum returns a Multi-Krum rule selecting and averaging the
// m = n - f lowest-scoring inputs.
func NewMultiKrum(n, f int) (*MultiKrum, error) {
	if f < 0 || n < 2*f+3 {
		return nil, fmt.Errorf("%w: multikrum needs n >= 2f+3, got n=%d f=%d", ErrRequirement, n, f)
	}
	return &MultiKrum{n: n, f: f, m: n - f, s: newArena(n)}, nil
}

// NewMultiKrumM returns a Multi-Krum rule with an explicit selection size m,
// 1 <= m <= n-f. Bulyan uses m=1 internally for its selection loop.
func NewMultiKrumM(n, f, m int) (*MultiKrum, error) {
	mk, err := NewMultiKrum(n, f)
	if err != nil {
		return nil, err
	}
	if m < 1 || m > n-f {
		return nil, fmt.Errorf("%w: multikrum m must be in [1, n-f], got m=%d n=%d f=%d",
			ErrRequirement, m, n, f)
	}
	mk.m = m
	return mk, nil
}

// Name implements Rule.
func (mk *MultiKrum) Name() string { return NameMultiKrum }

// N implements Rule.
func (mk *MultiKrum) N() int { return mk.n }

// F implements Rule.
func (mk *MultiKrum) F() int { return mk.f }

// M returns the number of inputs averaged.
func (mk *MultiKrum) M() int { return mk.m }

// selectInto computes Krum scores for inputs and leaves the indices of the m
// best-scoring ones (lowest score first, ties by index) in the first m slots
// of mk.s.order. The arena lock must be held.
func (mk *MultiKrum) selectInto(inputs []tensor.Vector, d int) {
	mk.s.computeDistances(inputs, d)
	mk.s.krumScoresInto(mk.f)
	argsortStable(mk.s.order, mk.s.scores)
}

// Select returns the indices of the m best-scoring inputs, lowest score
// first. Bulyan builds on this to extract selected gradients one by one.
func (mk *MultiKrum) Select(inputs []tensor.Vector) ([]int, error) {
	d, err := checkInputs(mk, inputs)
	if err != nil {
		return nil, err
	}
	mk.s.mu.Lock()
	defer mk.s.mu.Unlock()
	mk.selectInto(inputs, d)
	return append([]int(nil), mk.s.order[:mk.m]...), nil
}

// Aggregate implements Rule.
func (mk *MultiKrum) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	return mk.AggregateInto(nil, inputs)
}

// AggregateInto implements Rule.
func (mk *MultiKrum) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(mk, inputs)
	if err != nil {
		return nil, err
	}
	mk.s.mu.Lock()
	defer mk.s.mu.Unlock()
	mk.selectInto(inputs, d)
	chosen := mk.s.chosen[:0]
	for _, idx := range mk.s.order[:mk.m] {
		chosen = append(chosen, inputs[idx])
	}
	out, err := tensor.MeanInto(dst, chosen)
	mk.s.chosen = clearVectors(chosen)
	if err != nil {
		return nil, fmt.Errorf("gar: multikrum: %w", err)
	}
	return out, nil
}

// clearVectors nils out the retained input references and returns the empty
// slice for reuse.
func clearVectors(vs []tensor.Vector) []tensor.Vector {
	for i := range vs {
		vs[i] = nil
	}
	return vs[:0]
}
