package gar

import (
	"fmt"

	"garfield/internal/tensor"
)

// Krum (Blanchard et al., NeurIPS 2017) assigns each input a score equal to
// the sum of squared distances to its n-f-2 closest neighbours and returns
// the input with the smallest score. It requires n >= 2f+3.
type Krum struct {
	n, f int
}

var _ Rule = (*Krum)(nil)

// NewKrum returns a Krum rule over n inputs tolerating f Byzantine ones.
func NewKrum(n, f int) (*Krum, error) {
	if f < 0 || n < 2*f+3 {
		return nil, fmt.Errorf("%w: krum needs n >= 2f+3, got n=%d f=%d", ErrRequirement, n, f)
	}
	return &Krum{n: n, f: f}, nil
}

// Name implements Rule.
func (k *Krum) Name() string { return NameKrum }

// N implements Rule.
func (k *Krum) N() int { return k.n }

// F implements Rule.
func (k *Krum) F() int { return k.f }

// Aggregate implements Rule.
func (k *Krum) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	if _, err := checkInputs(k, inputs); err != nil {
		return nil, err
	}
	dist, err := pairwiseSquaredDistances(inputs)
	if err != nil {
		return nil, fmt.Errorf("gar: krum: %w", err)
	}
	scores := krumScores(dist, k.f)
	best := 0
	for i, s := range scores {
		if s < scores[best] {
			best = i
		}
	}
	return inputs[best].Clone(), nil
}

// MultiKrum generalizes Krum by averaging the m best-scoring inputs
// (m = n - f by default), achieving a better convergence rate than Krum as
// reported in the AggregaThor paper. It requires n >= 2f+3.
type MultiKrum struct {
	n, f, m int
}

var _ Rule = (*MultiKrum)(nil)

// NewMultiKrum returns a Multi-Krum rule selecting and averaging the
// m = n - f lowest-scoring inputs.
func NewMultiKrum(n, f int) (*MultiKrum, error) {
	if f < 0 || n < 2*f+3 {
		return nil, fmt.Errorf("%w: multikrum needs n >= 2f+3, got n=%d f=%d", ErrRequirement, n, f)
	}
	return &MultiKrum{n: n, f: f, m: n - f}, nil
}

// NewMultiKrumM returns a Multi-Krum rule with an explicit selection size m,
// 1 <= m <= n-f. Bulyan uses m=1 internally for its selection loop.
func NewMultiKrumM(n, f, m int) (*MultiKrum, error) {
	mk, err := NewMultiKrum(n, f)
	if err != nil {
		return nil, err
	}
	if m < 1 || m > n-f {
		return nil, fmt.Errorf("%w: multikrum m must be in [1, n-f], got m=%d n=%d f=%d",
			ErrRequirement, m, n, f)
	}
	mk.m = m
	return mk, nil
}

// Name implements Rule.
func (mk *MultiKrum) Name() string { return NameMultiKrum }

// N implements Rule.
func (mk *MultiKrum) N() int { return mk.n }

// F implements Rule.
func (mk *MultiKrum) F() int { return mk.f }

// M returns the number of inputs averaged.
func (mk *MultiKrum) M() int { return mk.m }

// Select returns the indices of the m best-scoring inputs, lowest score
// first. Bulyan builds on this to extract selected gradients one by one.
func (mk *MultiKrum) Select(inputs []tensor.Vector) ([]int, error) {
	if _, err := checkInputs(mk, inputs); err != nil {
		return nil, err
	}
	dist, err := pairwiseSquaredDistances(inputs)
	if err != nil {
		return nil, fmt.Errorf("gar: multikrum: %w", err)
	}
	scores := krumScores(dist, mk.f)
	return argsortAscending(scores)[:mk.m], nil
}

// Aggregate implements Rule.
func (mk *MultiKrum) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	sel, err := mk.Select(inputs)
	if err != nil {
		return nil, err
	}
	chosen := make([]tensor.Vector, len(sel))
	for i, idx := range sel {
		chosen[i] = inputs[idx]
	}
	out, err := tensor.Mean(chosen)
	if err != nil {
		return nil, fmt.Errorf("gar: multikrum: %w", err)
	}
	return out, nil
}
