//go:build amd64 && !purego

#include "textflag.h"

// func cpuSupportsAVX2FMA() bool
//
// True when CPUID reports FMA, AVX and OSXSAVE (leaf 1 ECX bits 12/28/27),
// the OS enabled XMM+YMM state saving (XCR0 bits 1-2), and CPUID leaf 7
// reports AVX2 (EBX bit 5).
TEXT ·cpuSupportsAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28 | 1<<12), R8
	CMPL R8, $(1<<27 | 1<<28 | 1<<12)
	JNE  no

	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func dotAsm(a, b []float64) float64
//
// Inner product over min(len(a), len(b)) elements: four 256-bit FMA
// accumulators (16 float64 per iteration) with a scalar FMA tail, reduced
// lanes-then-halves at the end.
TEXT ·dotAsm(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	MOVQ b_len+32(FP), DX
	CMPQ DX, CX
	CMOVQLT DX, CX          // CX = min(len(a), len(b))

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPS X8, X8, X8       // scalar tail accumulator

	MOVQ CX, AX
	SHRQ $4, AX             // 16-element iterations
	JZ   tail

loop16:
	VMOVUPD (SI), Y4
	VMOVUPD 32(SI), Y5
	VMOVUPD 64(SI), Y6
	VMOVUPD 96(SI), Y7
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1
	VFMADD231PD 64(DI), Y6, Y2
	VFMADD231PD 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ AX
	JNZ  loop16

tail:
	ANDQ $15, CX
	JZ   reduce

tailloop:
	VMOVSD (SI), X4
	VFMADD231SD (DI), X4, X8
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  tailloop

reduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VZEROUPPER
	ADDSD X8, X0
	MOVSD X0, ret+48(FP)
	RET
