package gar

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"garfield/internal/tensor"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func vecs(rows ...[]float64) []tensor.Vector {
	out := make([]tensor.Vector, len(rows))
	for i, r := range rows {
		out[i] = tensor.Vector(r)
	}
	return out
}

func TestNewByName(t *testing.T) {
	tests := []struct {
		name string
		n, f int
	}{
		{NameAverage, 5, 0},
		{NameMedian, 7, 3},
		{NameTrimmedMean, 7, 3},
		{NameKrum, 9, 3},
		{NameMultiKrum, 9, 3},
		{NameMDA, 7, 3},
		{NameBulyan, 15, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r, err := New(tt.name, tt.n, tt.f)
			if err != nil {
				t.Fatal(err)
			}
			if r.Name() != tt.name {
				t.Fatalf("Name = %q, want %q", r.Name(), tt.name)
			}
			if r.N() != tt.n {
				t.Fatalf("N = %d, want %d", r.N(), tt.n)
			}
		})
	}
}

func TestNewUnknownRule(t *testing.T) {
	if _, err := New("nonsense", 5, 1); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("err = %v, want ErrUnknownRule", err)
	}
}

func TestRequirementViolations(t *testing.T) {
	tests := []struct {
		name string
		n, f int
	}{
		{NameMedian, 6, 3},      // needs 7
		{NameTrimmedMean, 4, 2}, // needs 5
		{NameKrum, 8, 3},        // needs 9
		{NameMultiKrum, 8, 3},   // needs 9
		{NameMDA, 6, 3},         // needs 7
		{NameBulyan, 14, 3},     // needs 15
		{NameMedian, 5, -1},     // negative f
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.name, tt.n, tt.f); !errors.Is(err, ErrRequirement) {
				t.Fatalf("New(%s, %d, %d) err = %v, want ErrRequirement", tt.name, tt.n, tt.f, err)
			}
		})
	}
}

func TestMinN(t *testing.T) {
	tests := []struct {
		name string
		f    int
		want int
	}{
		{NameAverage, 3, 1},
		{NameMedian, 3, 7},
		{NameMDA, 3, 7},
		{NameTrimmedMean, 3, 7},
		{NameKrum, 3, 9},
		{NameMultiKrum, 3, 9},
		{NameBulyan, 3, 15},
	}
	for _, tt := range tests {
		got, err := MinN(tt.name, tt.f)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Fatalf("MinN(%s, %d) = %d, want %d", tt.name, tt.f, got, tt.want)
		}
	}
	if _, err := MinN("bogus", 1); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("MinN bogus err = %v", err)
	}
}

func TestInputCountValidation(t *testing.T) {
	for _, name := range Names() {
		n, _ := MinN(name, 1)
		if n < 3 {
			n = 3
		}
		r, err := New(name, n, boundF(name))
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		in := make([]tensor.Vector, n-1)
		for i := range in {
			in[i] = tensor.Vector{1, 2}
		}
		if _, err := r.Aggregate(in); !errors.Is(err, ErrInputCount) {
			t.Fatalf("%s: err = %v, want ErrInputCount", name, err)
		}
	}
}

// boundF picks an f valid for the rule at small n used in tests.
func boundF(name string) int {
	if name == NameAverage {
		return 0
	}
	return 0
}

func TestAverage(t *testing.T) {
	a, err := NewAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.Aggregate(vecs([]float64{1, 2}, []float64{3, 4}, []float64{5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 3) || !almostEqual(out[1], 4) {
		t.Fatalf("Average = %v", out)
	}
}

func TestMedianOdd(t *testing.T) {
	m, err := NewMedian(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Aggregate(vecs(
		[]float64{1, 100},
		[]float64{2, -100},
		[]float64{3, 0},
		[]float64{4, 1},
		[]float64{5, -1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != 0 {
		t.Fatalf("Median = %v, want [3 0]", out)
	}
}

func TestMedianEven(t *testing.T) {
	m, err := NewMedian(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Aggregate(vecs([]float64{1}, []float64{2}, []float64{3}, []float64{10}))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 2.5) {
		t.Fatalf("even Median = %v, want 2.5", out[0])
	}
}

func TestMedianResistsOutlier(t *testing.T) {
	m, err := NewMedian(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three honest gradients near 1.0, two Byzantine at 1e9.
	out, err := m.Aggregate(vecs(
		[]float64{0.9}, []float64{1.0}, []float64{1.1},
		[]float64{1e9}, []float64{1e9},
	))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] < 0.9 || out[0] > 1.1 {
		t.Fatalf("Median hijacked by outliers: %v", out[0])
	}
}

func TestSequentialMedianMatchesParallel(t *testing.T) {
	rng := tensor.NewRNG(13)
	n, d := 9, 4001
	in := make([]tensor.Vector, n)
	for i := range in {
		in[i] = rng.NormalVector(d, 0, 1)
	}
	par, err := NewMedian(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewSequentialMedian(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := par.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := seq.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel/sequential medians differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMedian3Branchless(t *testing.T) {
	perms := [][3]float64{
		{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1},
		{1, 1, 2}, {2, 2, 2}, {-5, 0, 5},
	}
	wants := []float64{2, 2, 2, 2, 2, 2, 1, 2, 0}
	for i, p := range perms {
		if got := median3(p[0], p[1], p[2]); got != wants[i] {
			t.Fatalf("median3(%v) = %v, want %v", p, got, wants[i])
		}
	}
}

func TestKrumPicksHonestCluster(t *testing.T) {
	k, err := NewKrum(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := vecs(
		[]float64{1.0, 1.0}, []float64{1.1, 0.9}, []float64{0.9, 1.1},
		[]float64{1.05, 1.0}, []float64{1.0, 0.95}, []float64{0.95, 1.05},
		[]float64{100, -100}, []float64{-100, 100}, []float64{500, 500},
	)
	out, err := k.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] < 0.5 || out[0] > 1.5 || out[1] < 0.5 || out[1] > 1.5 {
		t.Fatalf("Krum selected a Byzantine vector: %v", out)
	}
}

func TestKrumReturnsOneOfTheInputs(t *testing.T) {
	k, err := NewKrum(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	in := make([]tensor.Vector, 9)
	for i := range in {
		in[i] = rng.NormalVector(5, 0, 1)
	}
	out, err := k.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range in {
		same := true
		for i := range v {
			if v[i] != out[i] {
				same = false
				break
			}
		}
		if same {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("Krum output is not one of the inputs")
	}
}

func TestKrumOutputIsCopy(t *testing.T) {
	k, err := NewKrum(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	in := make([]tensor.Vector, 9)
	for i := range in {
		in[i] = rng.NormalVector(3, 0, 1)
	}
	out, err := k.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	orig := out.Clone()
	for _, v := range in {
		v[0] = 1e18
	}
	if out[0] != orig[0] {
		t.Fatal("Krum output aliases an input vector")
	}
}

func TestMultiKrumAveragesSelection(t *testing.T) {
	mk, err := NewMultiKrum(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mk.M() != 6 {
		t.Fatalf("M = %d, want 6", mk.M())
	}
	in := vecs(
		[]float64{1}, []float64{1}, []float64{1},
		[]float64{1}, []float64{1}, []float64{1},
		[]float64{1000}, []float64{-1000}, []float64{999},
	)
	out, err := mk.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 1) {
		t.Fatalf("MultiKrum = %v, want 1", out[0])
	}
}

func TestMultiKrumMBounds(t *testing.T) {
	if _, err := NewMultiKrumM(9, 3, 0); !errors.Is(err, ErrRequirement) {
		t.Fatalf("m=0 err = %v", err)
	}
	if _, err := NewMultiKrumM(9, 3, 7); !errors.Is(err, ErrRequirement) {
		t.Fatalf("m>n-f err = %v", err)
	}
	mk, err := NewMultiKrumM(9, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mk.M() != 1 {
		t.Fatalf("M = %d, want 1", mk.M())
	}
}

func TestMDASelectsTightestSubset(t *testing.T) {
	m, err := NewMDA(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Honest cluster around 2.0, Byzantine at extremes.
	in := vecs(
		[]float64{1.9}, []float64{2.0}, []float64{2.1},
		[]float64{50}, []float64{-50},
	)
	out, err := m.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 2.0) {
		t.Fatalf("MDA = %v, want 2.0", out[0])
	}
}

func TestMDAZeroFIsAverage(t *testing.T) {
	m, err := NewMDA(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Aggregate(vecs([]float64{1}, []float64{2}, []float64{3}))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 2) {
		t.Fatalf("MDA f=0 = %v, want 2", out[0])
	}
}

func TestBulyanResistsCoordinateAttack(t *testing.T) {
	b, err := NewBulyan(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(21)
	in := make([]tensor.Vector, 15)
	for i := 0; i < 12; i++ {
		in[i] = rng.NormalVector(10, 1.0, 0.1)
	}
	// Byzantine vectors try the "hidden" high-dimensional attack: agree on
	// most coordinates but blow up one coordinate.
	for i := 12; i < 15; i++ {
		v := rng.NormalVector(10, 1.0, 0.1)
		v[7] = 1e6
		in[i] = v
	}
	out, err := b.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[7] < 0 || out[7] > 2 {
		t.Fatalf("Bulyan coordinate 7 hijacked: %v", out[7])
	}
}

func TestBulyanInnerMedian(t *testing.T) {
	b, err := NewBulyanInner(15, 3, NameMedian)
	if err != nil {
		t.Fatal(err)
	}
	if b.Inner() != NameMedian {
		t.Fatalf("Inner = %q", b.Inner())
	}
	rng := tensor.NewRNG(2)
	in := make([]tensor.Vector, 15)
	for i := range in {
		in[i] = rng.NormalVector(4, 0, 1)
	}
	if _, err := b.Aggregate(in); err != nil {
		t.Fatal(err)
	}
}

func TestBulyanInvalidInner(t *testing.T) {
	if _, err := NewBulyanInner(15, 3, "average"); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("err = %v, want ErrUnknownRule", err)
	}
}

func TestTrimmedMean(t *testing.T) {
	tm, err := NewTrimmedMean(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tm.Aggregate(vecs(
		[]float64{-1000}, []float64{1}, []float64{2}, []float64{3}, []float64{1000},
	))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 2) {
		t.Fatalf("TrimmedMean = %v, want 2", out[0])
	}
}

func TestDimensionMismatchAcrossInputs(t *testing.T) {
	m, err := NewMedian(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Aggregate(vecs([]float64{1, 2}, []float64{1}, []float64{1, 2}))
	if !errors.Is(err, tensor.ErrDimensionMismatch) {
		t.Fatalf("err = %v, want dimension mismatch", err)
	}
}

func TestDeltaFactors(t *testing.T) {
	// Spot-check against the closed forms in Section 3.1.
	d, err := DeltaFactor(NameMDA, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 2*math.Sqrt2*2/8) {
		t.Fatalf("MDA delta = %v", d)
	}
	d, err = DeltaFactor(NameMedian, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, math.Sqrt(8)) {
		t.Fatalf("Median delta = %v", d)
	}
	d, err = DeltaFactor(NameKrum, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * (8 + (2*6+4*7)/4.0))
	if !almostEqual(d, want) {
		t.Fatalf("Krum delta = %v, want %v", d, want)
	}
	if _, err := DeltaFactor(NameBulyan, 15, 3); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("Bulyan delta err = %v", err)
	}
	if _, err := DeltaFactor(NameKrum, 6, 2); !errors.Is(err, ErrRequirement) {
		t.Fatalf("Krum small-n delta err = %v", err)
	}
}

func TestCheckVarianceCondition(t *testing.T) {
	rng := tensor.NewRNG(31)
	trueGrad := tensor.Filled(20, 5.0) // strong signal
	grads := make([]tensor.Vector, 10)
	for i := range grads {
		g := trueGrad.Clone()
		noise := rng.NormalVector(20, 0, 0.01) // tiny variance
		if err := g.AddInPlace(noise); err != nil {
			t.Fatal(err)
		}
		grads[i] = g
	}
	rep, err := CheckVarianceCondition(NameMedian, 2, grads, trueGrad)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied {
		t.Fatalf("low-variance condition should hold: %+v", rep)
	}
	// Now enormous variance: condition must fail.
	for i := range grads {
		grads[i] = rng.NormalVector(20, 0, 1000)
	}
	rep, err = CheckVarianceCondition(NameMedian, 2, grads, trueGrad)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Fatalf("high-variance condition should fail: %+v", rep)
	}
}

func TestCheckVarianceConditionEmpty(t *testing.T) {
	if _, err := CheckVarianceCondition(NameMedian, 0, nil, tensor.Vector{1}); !errors.Is(err, tensor.ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestForEachCombinationCount(t *testing.T) {
	count := 0
	buf := make([]int, 3)
	forEachCombination(6, 3, buf, func(s []int) { count++ })
	if count != 20 { // C(6,3)
		t.Fatalf("combinations = %d, want 20", count)
	}
}

func TestQuickselect(t *testing.T) {
	rng := tensor.NewRNG(17)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		k := rng.Intn(n)
		sorted := append([]float64(nil), xs...)
		insertionSort(sorted)
		got := quickselect(append([]float64(nil), xs...), k)
		if got != sorted[k] {
			t.Fatalf("quickselect(n=%d, k=%d) = %v, want %v", n, k, got, sorted[k])
		}
	}
}

// TestParallelForDeterministicPartition checks the pool executor covers
// [0, total) exactly once per index for any worker count, writing through
// disjoint slots.
func TestParallelForDeterministicPartition(t *testing.T) {
	var wg sync.WaitGroup
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, total := range []int{1, 2, 16, 100, 1023} {
			hits := make([]int32, total)
			parallelFor(total, workers, &wg, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d total=%d: index %d visited %d times", workers, total, i, h)
				}
			}
		}
	}
}

// TestDotKernelAgainstGeneric cross-checks the dispatching kernel (assembly
// when available) against the portable kernel within floating-point
// tolerance, including tail lengths.
func TestDotKernelAgainstGeneric(t *testing.T) {
	rng := tensor.NewRNG(11)
	for _, n := range []int{0, 1, 3, 4, 15, 16, 17, 64, 1000, 4097} {
		a := rng.NormalVector(n, 0, 1)
		b := rng.NormalVector(n, 0, 1)
		got := dotKernel(a, b)
		want := dotGeneric(a, b)
		scale := 1.0
		for i := range a {
			scale += math.Abs(a[i] * b[i])
		}
		if math.Abs(got-want) > 1e-12*scale {
			t.Fatalf("n=%d: dotKernel = %v, dotGeneric = %v", n, got, want)
		}
	}
}

// TestSumSmallestKMatchesSort pins the introselect smallest-k sum to the
// sort-based formulation bit for bit.
func TestSumSmallestKMatchesSort(t *testing.T) {
	rng := tensor.NewRNG(13)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Round(rng.Norm()*4) / 4 // provoke ties
		}
		k := 1 + rng.Intn(n)
		ref := append([]float64(nil), xs...)
		sort.Float64s(ref)
		var want float64
		for _, x := range ref[:k] {
			want += x
		}
		got := sumSmallestK(append([]float64(nil), xs...), k)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d k=%d: sumSmallestK = %v, want %v", n, k, got, want)
		}
	}
}
