package gar

import (
	"math"
	"testing"
	"testing/quick"

	"garfield/internal/tensor"
)

// Property-based tests (testing/quick) of invariants every robust GAR must
// satisfy. Inputs are generated from compact seeds so that the rules'
// resilience preconditions are always met.

// genInputs builds n vectors of dimension d from a seed, with values bounded
// so numeric comparisons stay exact enough.
func genInputs(seed uint64, n, d int) []tensor.Vector {
	rng := tensor.NewRNG(seed)
	out := make([]tensor.Vector, n)
	for i := range out {
		out[i] = rng.NormalVector(d, 0, 10)
	}
	return out
}

func permute(vs []tensor.Vector, perm []int) []tensor.Vector {
	out := make([]tensor.Vector, len(vs))
	for i, p := range perm {
		out[i] = vs[p]
	}
	return out
}

func vectorsAlmostEqual(a, b tensor.Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])+math.Abs(b[i])) {
			return false
		}
	}
	return true
}

// TestPropertyPermutationInvariance: a GAR's output must not depend on the
// order in which the q vectors arrive (they arrive in arbitrary network
// order in a real deployment).
func TestPropertyPermutationInvariance(t *testing.T) {
	rules := []struct {
		name string
		n, f int
	}{
		{NameAverage, 7, 0},
		{NameMedian, 7, 3},
		{NameTrimmedMean, 7, 3},
		{NameMDA, 7, 2},
		{NameKrum, 9, 3},
		{NameMultiKrum, 9, 3},
		{NameBulyan, 15, 3},
	}
	for _, rc := range rules {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			r, err := New(rc.name, rc.n, rc.f)
			if err != nil {
				t.Fatal(err)
			}
			f := func(seed uint64, permSeed uint64) bool {
				in := genInputs(seed, rc.n, 6)
				a, err := r.Aggregate(in)
				if err != nil {
					return false
				}
				perm := tensor.NewRNG(permSeed).Perm(rc.n)
				b, err := r.Aggregate(permute(in, perm))
				if err != nil {
					return false
				}
				return vectorsAlmostEqual(a, b, 1e-9)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropertyUnanimity: when every input is the same vector g, every rule
// must output g (robust aggregation of agreement is agreement).
func TestPropertyUnanimity(t *testing.T) {
	rules := []struct {
		name string
		n, f int
	}{
		{NameAverage, 7, 0},
		{NameMedian, 7, 3},
		{NameTrimmedMean, 7, 3},
		{NameMDA, 7, 2},
		{NameKrum, 9, 3},
		{NameMultiKrum, 9, 3},
		{NameBulyan, 15, 3},
	}
	for _, rc := range rules {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			r, err := New(rc.name, rc.n, rc.f)
			if err != nil {
				t.Fatal(err)
			}
			f := func(seed uint64) bool {
				g := tensor.NewRNG(seed).NormalVector(5, 0, 10)
				in := make([]tensor.Vector, rc.n)
				for i := range in {
					in[i] = g.Clone()
				}
				out, err := r.Aggregate(in)
				if err != nil {
					return false
				}
				return vectorsAlmostEqual(out, g, 1e-9)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropertyCoordinateBounds: Median and TrimmedMean outputs must lie,
// per coordinate, within [min, max] of the inputs (they are order statistics
// or averages of order statistics).
func TestPropertyCoordinateBounds(t *testing.T) {
	for _, name := range []string{NameMedian, NameTrimmedMean} {
		name := name
		t.Run(name, func(t *testing.T) {
			r, err := New(name, 7, 3)
			if err != nil {
				t.Fatal(err)
			}
			f := func(seed uint64) bool {
				in := genInputs(seed, 7, 8)
				out, err := r.Aggregate(in)
				if err != nil {
					return false
				}
				for c := 0; c < 8; c++ {
					lo, hi := math.Inf(1), math.Inf(-1)
					for _, v := range in {
						lo = math.Min(lo, v[c])
						hi = math.Max(hi, v[c])
					}
					if out[c] < lo-1e-12 || out[c] > hi+1e-12 {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropertyByzantineBounded: with f adversarial vectors placed arbitrarily
// far away and n-f honest vectors drawn near a common point, the output of a
// robust rule must stay within the honest cluster's bounding box inflated by
// its own diameter. Average (the vanilla rule) must violate this, which is
// the whole motivation for the paper.
func TestPropertyByzantineBounded(t *testing.T) {
	rules := []struct {
		name string
		n, f int
	}{
		{NameMedian, 9, 3},
		{NameTrimmedMean, 9, 3},
		{NameMDA, 9, 3},
		{NameKrum, 9, 3},
		{NameBulyan, 15, 3},
	}
	const d = 6
	for _, rc := range rules {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			r, err := New(rc.name, rc.n, rc.f)
			if err != nil {
				t.Fatal(err)
			}
			f := func(seed uint64, attackScale uint16) bool {
				rng := tensor.NewRNG(seed)
				center := rng.NormalVector(d, 0, 5)
				in := make([]tensor.Vector, rc.n)
				for i := 0; i < rc.n-rc.f; i++ {
					v := center.Clone()
					noise := rng.NormalVector(d, 0, 0.5)
					if err := v.AddInPlace(noise); err != nil {
						return false
					}
					in[i] = v
				}
				scale := 1e3 * (1 + float64(attackScale))
				for i := rc.n - rc.f; i < rc.n; i++ {
					in[i] = rng.NormalVector(d, scale, scale)
				}
				out, err := r.Aggregate(in)
				if err != nil {
					return false
				}
				// The output must stay near the honest cluster: within
				// max distance from center among honest vectors, times a
				// slack factor of n (covers Multi-Krum-style averaging).
				var maxHonest float64
				for i := 0; i < rc.n-rc.f; i++ {
					dd, err := in[i].Distance(center)
					if err != nil {
						return false
					}
					maxHonest = math.Max(maxHonest, dd)
				}
				dist, err := out.Distance(center)
				if err != nil {
					return false
				}
				return dist <= float64(rc.n)*maxHonest+1e-9
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropertyAverageIsVulnerable documents the counterpoint: a single
// far-away Byzantine vector drags the mean arbitrarily far from the honest
// cluster.
func TestPropertyAverageIsVulnerable(t *testing.T) {
	a, err := NewAverage(5)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]tensor.Vector, 5)
	for i := 0; i < 4; i++ {
		in[i] = tensor.Filled(3, 1)
	}
	in[4] = tensor.Filled(3, 1e12)
	out, err := a.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] < 1e10 {
		t.Fatalf("Average unexpectedly robust: %v", out[0])
	}
}

// TestPropertyMedianIsOrderStatistic: for odd n the coordinate-wise median
// must be one of the input values at every coordinate.
func TestPropertyMedianIsOrderStatistic(t *testing.T) {
	r, err := NewMedian(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		in := genInputs(seed, 7, 5)
		out, err := r.Aggregate(in)
		if err != nil {
			return false
		}
		for c := 0; c < 5; c++ {
			found := false
			for _, v := range in {
				if v[c] == out[c] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
