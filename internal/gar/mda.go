package gar

import (
	"fmt"
	"math"

	"garfield/internal/tensor"
)

// MDA — minimum-diameter averaging (Rousseeuw 1985, as used by the paper) —
// finds the subset of n-f inputs with the smallest diameter (maximum pairwise
// distance within the subset) and returns its average. It requires n >= 2f+1
// and carries an O(C(n,f) + n^2 d) cost: exponential when f grows with n,
// polynomial for constant f, which is the regime the paper benchmarks.
type MDA struct {
	n, f int
}

var _ Rule = (*MDA)(nil)

// NewMDA returns an MDA rule over n inputs tolerating f Byzantine ones.
func NewMDA(n, f int) (*MDA, error) {
	if f < 0 || n < 2*f+1 {
		return nil, fmt.Errorf("%w: mda needs n >= 2f+1, got n=%d f=%d", ErrRequirement, n, f)
	}
	return &MDA{n: n, f: f}, nil
}

// Name implements Rule.
func (m *MDA) Name() string { return NameMDA }

// N implements Rule.
func (m *MDA) N() int { return m.n }

// F implements Rule.
func (m *MDA) F() int { return m.f }

// Aggregate implements Rule.
func (m *MDA) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	if _, err := checkInputs(m, inputs); err != nil {
		return nil, err
	}
	if m.f == 0 {
		return tensor.Mean(inputs)
	}
	dist, err := pairwiseSquaredDistances(inputs)
	if err != nil {
		return nil, fmt.Errorf("gar: mda: %w", err)
	}
	keep := m.n - m.f
	bestDiameter := math.Inf(1)
	bestSpread := math.Inf(1)
	var bestSubset []int
	subset := make([]int, keep)
	forEachCombination(m.n, keep, subset, func(s []int) {
		diam := subsetDiameter(dist, s)
		if diam > bestDiameter {
			return
		}
		// Ties on the diameter are common (several subsets can share the
		// pair realizing the maximum distance); break them by the total
		// pairwise spread so the result is independent of input order.
		spread := subsetSpread(dist, s)
		if diam < bestDiameter || spread < bestSpread {
			bestDiameter = diam
			bestSpread = spread
			bestSubset = append(bestSubset[:0], s...)
		}
	})
	chosen := make([]tensor.Vector, keep)
	for i, idx := range bestSubset {
		chosen[i] = inputs[idx]
	}
	out, err := tensor.Mean(chosen)
	if err != nil {
		return nil, fmt.Errorf("gar: mda: %w", err)
	}
	return out, nil
}

// subsetSpread returns the sum of pairwise squared distances within the
// subset s of indices, the permutation-invariant tie-breaker for equal
// diameters.
func subsetSpread(dist [][]float64, s []int) float64 {
	var sum float64
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			sum += dist[s[i]][s[j]]
		}
	}
	return sum
}

// subsetDiameter returns the maximum pairwise squared distance within the
// subset s of indices.
func subsetDiameter(dist [][]float64, s []int) float64 {
	var maxD float64
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if d := dist[s[i]][s[j]]; d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// forEachCombination calls fn with every k-subset of [0, n), reusing buf
// (len k) as scratch to avoid per-combination allocation.
func forEachCombination(n, k int, buf []int, fn func([]int)) {
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == k {
			fn(buf)
			return
		}
		// Prune: need k-idx more elements from [start, n).
		for i := start; i <= n-(k-idx); i++ {
			buf[idx] = i
			rec(i+1, idx+1)
		}
	}
	rec(0, 0)
}
