package gar

import (
	"fmt"
	"math"

	"garfield/internal/tensor"
)

// MDA — minimum-diameter averaging (Rousseeuw 1985, as used by the paper) —
// finds the subset of n-f inputs with the smallest diameter (maximum pairwise
// distance within the subset) and returns its average. It requires n >= 2f+1
// and carries an O(C(n,f) + n^2 d) cost: exponential when f grows with n,
// polynomial for constant f, which is the regime the paper benchmarks.
type MDA struct {
	n, f int
	s    *arena
}

var _ Rule = (*MDA)(nil)

// NewMDA returns an MDA rule over n inputs tolerating f Byzantine ones.
func NewMDA(n, f int) (*MDA, error) {
	if f < 0 || n < 2*f+1 {
		return nil, fmt.Errorf("%w: mda needs n >= 2f+1, got n=%d f=%d", ErrRequirement, n, f)
	}
	m := &MDA{n: n, f: f, s: newArena(n)}
	keep := n - f
	m.s.subset = make([]int, keep)
	m.s.bestSubset = make([]int, keep)
	return m, nil
}

// Name implements Rule.
func (m *MDA) Name() string { return NameMDA }

// N implements Rule.
func (m *MDA) N() int { return m.n }

// F implements Rule.
func (m *MDA) F() int { return m.f }

// Aggregate implements Rule.
func (m *MDA) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	return m.AggregateInto(nil, inputs)
}

// AggregateInto implements Rule.
func (m *MDA) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(m, inputs)
	if err != nil {
		return nil, err
	}
	if m.f == 0 {
		out, err := tensor.MeanInto(dst, inputs)
		if err != nil {
			return nil, fmt.Errorf("gar: mda: %w", err)
		}
		return out, nil
	}
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.s.computeDistances(inputs, d)
	keep := m.n - m.f
	dist := m.s.dist
	n := m.n
	bestDiameter := math.Inf(1)
	bestSpread := math.Inf(1)
	bestSubset := m.s.bestSubset[:0]
	// Enumerate the C(n, keep) candidate subsets in lexicographic order —
	// the same order the recursive formulation visited them in, so
	// tie-breaking is unchanged — without per-combination allocation or
	// call overhead.
	s := m.s.subset
	for i := range s {
		s[i] = i
	}
	for {
		diam := subsetDiameter(dist, n, s)
		if diam <= bestDiameter {
			// Ties on the diameter are common (several subsets can share
			// the pair realizing the maximum distance); break them by the
			// total pairwise spread so the result is independent of input
			// order.
			spread := subsetSpread(dist, n, s)
			if diam < bestDiameter || spread < bestSpread {
				bestDiameter = diam
				bestSpread = spread
				bestSubset = append(bestSubset[:0], s...)
			}
		}
		// Advance to the next lexicographic keep-subset of [0, n).
		i := keep - 1
		for i >= 0 && s[i] == n-keep+i {
			i--
		}
		if i < 0 {
			break
		}
		s[i]++
		for j := i + 1; j < keep; j++ {
			s[j] = s[j-1] + 1
		}
	}
	m.s.bestSubset = bestSubset
	chosen := m.s.chosen[:0]
	for _, idx := range bestSubset {
		chosen = append(chosen, inputs[idx])
	}
	out, err := tensor.MeanInto(dst, chosen)
	m.s.chosen = clearVectors(chosen)
	if err != nil {
		return nil, fmt.Errorf("gar: mda: %w", err)
	}
	return out, nil
}

// subsetSpread returns the sum of pairwise squared distances within the
// subset s of indices, the permutation-invariant tie-breaker for equal
// diameters.
func subsetSpread(dist []float64, n int, s []int) float64 {
	var sum float64
	for i := 0; i < len(s); i++ {
		base := s[i] * n
		for j := i + 1; j < len(s); j++ {
			sum += dist[base+s[j]]
		}
	}
	return sum
}

// subsetDiameter returns the maximum pairwise squared distance within the
// subset s of indices.
func subsetDiameter(dist []float64, n int, s []int) float64 {
	var maxD float64
	for i := 0; i < len(s); i++ {
		base := s[i] * n
		for j := i + 1; j < len(s); j++ {
			if d := dist[base+s[j]]; d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}
