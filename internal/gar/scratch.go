package gar

import (
	"math"
	"sync"

	"garfield/internal/tensor"
)

// arena is the per-Rule scratch space behind the zero-allocation aggregation
// hot path (the memory-management optimization of Section 4.4 of the paper):
// every buffer the distance and coordinate kernels touch is allocated once,
// on first use, and reused across Aggregate calls. All sizes depend only on
// n, never on the input dimension d. The O(n) buffers are built at
// construction; the O(n²) pairwise-distance machinery (dist, allPairs) is
// built lazily on the first computeDistances call, so coordinate-wise rules
// (median, trimmed mean, Phocas) never pay for it — at n = 10,000 the
// distance matrix alone is 800 MB.
//
// The kernels dispatched to the worker pool are prebuilt method values that
// read their per-call parameters (cIn, cOut, cKPrime) from arena fields, so
// steady-state dispatch allocates nothing.
//
// An arena makes its rule stateful; the mutex serializes concurrent
// Aggregate calls on one Rule value so the seed's any-goroutine safety is
// preserved (concurrent callers wanting parallelism should use distinct Rule
// instances).
type arena struct {
	mu sync.Mutex
	n  int
	wg sync.WaitGroup

	// Pairwise-distance kernel state (Krum, Multi-Krum, MDA, Bulyan).
	vs       []tensor.Vector // inputs pinned for the duration of the kernels
	norms    []float64       // ||v_i||^2, computed once per Aggregate
	dist     []float64       // flat n×n squared-distance matrix
	allPairs [][2]int32      // (i,i) diagonal first, then (i,j) i < j row-major
	partials []float64       // per-(pair, block) partial inner products
	d, nb    int             // current input dimension and block count

	row    []float64 // one matrix row minus the diagonal
	scores []float64 // per-input Krum scores
	order  []int     // argsort scratch
	chosen []tensor.Vector

	// Bulyan selection state.
	alive    []int
	selected []tensor.Vector

	// MDA subset-enumeration state.
	subset, bestSubset []int

	// Coordinate-sharded kernels: one column + order buffer per share.
	shareCols [][]float64
	shareOrds [][]int

	// Per-call parameters of the prebuilt coordinate kernels.
	cIn     []tensor.Vector
	cOut    tensor.Vector
	cKPrime int
	cKeep   int
	cTrim   int

	blockFn  func(share, lo, hi int)
	medianFn func(share, lo, hi int)
	bulyanFn func(share, lo, hi int)
	phocasFn func(share, lo, hi int)
}

// blockDim is the coordinate-block width of the Gram kernel: 4096 float64 =
// 32 KiB per vector block, so the full n-vector working set of one block sits
// in L2 and the two blocks of the active pair in L1.
const blockDim = 4096

// gramCancelGuard is the relative threshold below which a Gram-identity
// distance is treated as cancellation noise and recomputed directly: the
// subtraction's error is O(d·eps) of the squared norms, comfortably under
// this bound for any realistic dimension.
const gramCancelGuard = 1e-8

func newArena(n int) *arena {
	a := &arena{
		n:        n,
		norms:    make([]float64, n),
		row:      make([]float64, 0, n),
		scores:   make([]float64, n),
		order:    make([]int, n),
		chosen:   make([]tensor.Vector, 0, n),
		vs:       make([]tensor.Vector, 0, n),
		alive:    make([]int, 0, n),
		selected: make([]tensor.Vector, 0, n),
		cIn:      make([]tensor.Vector, 0, n),
	}
	shares := maxShares()
	a.shareCols = make([][]float64, shares)
	a.shareOrds = make([][]int, shares)
	for s := range a.shareCols {
		a.shareCols[s] = make([]float64, n)
		a.shareOrds[s] = make([]int, n)
	}
	a.blockFn = a.blockKernel
	a.medianFn = a.medianKernel
	a.bulyanFn = a.bulyanKernel
	a.phocasFn = a.phocasKernel
	return a
}

// ensurePairwise builds the O(n²) pairwise state on first use. Diagonal
// pairs (the norms) first, then the off-diagonal pairs in row-major order so
// the i-side block stays cache-hot across one row's inner products.
func (a *arena) ensurePairwise() {
	if a.dist != nil {
		return
	}
	n := a.n
	a.dist = make([]float64, n*n)
	a.allPairs = make([][2]int32, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		a.allPairs = append(a.allPairs, [2]int32{int32(i), int32(i)})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.allPairs = append(a.allPairs, [2]int32{int32(i), int32(j)})
		}
	}
}

// computeDistances fills norms and the flat distance matrix for vs using the
// Gram identity d²(i,j) = ‖i‖² + ‖j‖² − 2⟨i,j⟩: each input is read once for
// its norm and once per pair for the inner product, every inner product runs
// through the FMA/unrolled dotKernel, and — the decisive part at large d —
// the coordinate axis is tiled into blockDim-wide blocks so the n(n+1)/2
// inner products of one block read L2-resident data instead of streaming the
// full vectors from memory once per pair.
//
// Shares own disjoint block ranges and write disjoint partial slots, and the
// per-pair partials are reduced in fixed block order afterwards, so the
// matrix is bit-identical however many cores participate (the deterministic
// work-partitioning of parallel.go).
func (a *arena) computeDistances(vs []tensor.Vector, d int) {
	a.ensurePairwise()
	a.vs = append(a.vs[:0], vs...)
	a.d = d
	nb := (d + blockDim - 1) / blockDim
	if nb < 1 {
		nb = 1
	}
	a.nb = nb
	np := len(a.allPairs)
	if cap(a.partials) < np*nb {
		a.partials = make([]float64, np*nb)
	}
	a.partials = a.partials[:np*nb]
	workers := kernelWorkers(np*d, maxShares())
	parallelFor(nb, workers, &a.wg, a.blockFn)
	// Reduce the per-block partials in ascending block order — a fixed
	// summation order, independent of which share computed which block —
	// then assemble norms and distances.
	n := a.n
	for p := 0; p < n; p++ {
		a.norms[p] = sumBlocks(a.partials[p*nb : (p+1)*nb])
	}
	for p := n; p < np; p++ {
		i, j := int(a.allPairs[p][0]), int(a.allPairs[p][1])
		d2 := a.norms[i] + a.norms[j] - 2*sumBlocks(a.partials[p*nb:(p+1)*nb])
		if d2 < gramCancelGuard*(a.norms[i]+a.norms[j]) {
			// The Gram identity cancels catastrophically for inputs that
			// are close together but far from the origin (late-training
			// model vectors): when the result is within the subtraction's
			// rounding-noise floor, fall back to the direct
			// subtract-square pass, which stays accurate there. Identical
			// inputs land here and yield an exact 0 either way.
			direct, err := a.vs[i].SquaredDistance(a.vs[j])
			if err == nil {
				d2 = direct
			}
		}
		if d2 < 0 {
			d2 = 0 // Gram identity can go negative by rounding; distances cannot
		}
		a.dist[i*n+j] = d2
		a.dist[j*n+i] = d2
	}
	// Release the input references: the matrix outlives the call, the
	// gradients must not.
	for i := range a.vs {
		a.vs[i] = nil
	}
	a.vs = a.vs[:0]
}

// blockKernel computes, for every coordinate block in [lo, hi), the partial
// inner product of every pair over that block.
func (a *arena) blockKernel(_, lo, hi int) {
	nb := a.nb
	for blk := lo; blk < hi; blk++ {
		c0 := blk * blockDim
		c1 := c0 + blockDim
		if c1 > a.d {
			c1 = a.d
		}
		for p, pr := range a.allPairs {
			a.partials[p*nb+blk] = dotKernel(a.vs[pr[0]][c0:c1], a.vs[pr[1]][c0:c1])
		}
	}
}

func sumBlocks(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// krumScoresInto fills a.scores with each input's Krum score: the sum of
// squared distances to its n-f-2 closest neighbours (lower is better). The
// per-row smallest-k sum uses introselect instead of a full sort; the
// summation order matches the sort-based formulation bit for bit (see
// sumSmallestK).
func (a *arena) krumScoresInto(f int) {
	n := a.n
	k := n - f - 2
	for i := 0; i < n; i++ {
		row := a.row[:0]
		base := i * n
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, a.dist[base+j])
			}
		}
		a.scores[i] = sumSmallestK(row, k)
	}
}

// medianKernel fills a.cOut[lo:hi] with the coordinate-wise medians of a.cIn.
func (a *arena) medianKernel(share, lo, hi int) {
	in := a.cIn
	col := a.shareCols[share][:len(in)]
	for c := lo; c < hi; c++ {
		for i, v := range in {
			col[i] = v[c]
		}
		a.cOut[c] = medianOfColumn(col)
	}
}

// bulyanKernel fills a.cOut[lo:hi] with Bulyan's coordinate-wise
// median-then-closest-average over the selected gradients in a.cIn: per
// coordinate, take the median of the k selected values, then average the
// cKPrime values closest to it. Both orderings are stable insertion sorts,
// which coincide with the sort.Slice small-array path they replace for
// k <= 12 (ties between distinct equidistant values may break differently
// beyond that; the aggregate remains within the same honest hull).
func (a *arena) bulyanKernel(share, lo, hi int) {
	in := a.cIn
	k := len(in)
	col := a.shareCols[share][:k]
	ord := a.shareOrds[share][:k]
	kPrime := a.cKPrime
	for c := lo; c < hi; c++ {
		for i, v := range in {
			col[i] = v[c]
		}
		argsortStable(ord, col)
		var med float64
		if k%2 == 1 {
			med = col[ord[k/2]]
		} else {
			med = 0.5 * (col[ord[k/2-1]] + col[ord[k/2]])
		}
		// Stable re-sort of the value-ordered indices by distance to the
		// median.
		for i := 1; i < k; i++ {
			for j := i; j > 0 && math.Abs(col[ord[j]]-med) < math.Abs(col[ord[j-1]]-med); j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
		var s float64
		for _, idx := range ord[:kPrime] {
			s += col[idx]
		}
		a.cOut[c] = s / float64(kPrime)
	}
}

// phocasKernel fills a.cOut[lo:hi] with Phocas' two-step coordinate rule:
// the cTrim-trimmed mean of the coordinate, then the average of the cKeep
// values closest to it. Orderings are stable insertion sorts (see
// bulyanKernel for the tie-break note).
func (a *arena) phocasKernel(share, lo, hi int) {
	in := a.cIn
	n := len(in)
	col := a.shareCols[share][:n]
	ord := a.shareOrds[share][:n]
	trim, keep := a.cTrim, a.cKeep
	trimKeep := float64(n - 2*trim)
	for c := lo; c < hi; c++ {
		for i, v := range in {
			col[i] = v[c]
		}
		argsortStable(ord, col)
		var tm float64
		for _, idx := range ord[trim : n-trim] {
			tm += col[idx]
		}
		tm /= trimKeep
		for i := 1; i < n; i++ {
			for j := i; j > 0 && math.Abs(col[ord[j]]-tm) < math.Abs(col[ord[j-1]]-tm); j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
		var s float64
		for _, idx := range ord[:keep] {
			s += col[idx]
		}
		a.cOut[c] = s / float64(keep)
	}
}

// runCoordinate dispatches one of the prebuilt coordinate kernels over d
// coordinates with the per-call parameters already stored in the arena.
func (a *arena) runCoordinate(fn func(share, lo, hi int), d, perCoordWork int) {
	workers := kernelWorkers(d*perCoordWork, len(a.shareCols))
	parallelFor(d, workers, &a.wg, fn)
	for i := range a.cIn {
		a.cIn[i] = nil
	}
	a.cIn = a.cIn[:0]
	a.cOut = nil
}
