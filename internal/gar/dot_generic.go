//go:build !amd64 || purego

package gar

const useAsmDot = false

func dotAsm(a, b []float64) float64 { return dotGeneric(a, b) }
