package gar

import "garfield/internal/tensor"

// ReplyArena owns the decode destinations for a pull round: slot i is where
// peer i's reply vector materializes, and the slots keep their backing
// arrays across rounds, so the steady state of a training loop decodes every
// compressed reply with zero allocations — the fused decode-aggregate path.
// It satisfies rpc.ReplySlots (kept implicit to avoid a gar->rpc import).
//
// Ownership contract: the vectors returned from a pull against the arena
// alias the slots and stay valid only until the next pull against the same
// arena. That fits every Garfield protocol step, which aggregates each
// pull's replies (the aggregate is written to the Rule's own scratch, never
// aliasing the inputs — see arena.computeDistances releasing its refs)
// before issuing the next pull on the same server.
//
// ReplyArena is not safe for concurrent pulls; give concurrent pullers
// separate arenas (or none — a nil arena falls back to per-reply allocation).
type ReplyArena struct {
	// Pointer-per-slot, not a flat []tensor.Vector: ReplySlot hands out
	// *tensor.Vector before the pull's goroutines spawn, and a later growth
	// of the slot table must not invalidate pointers already handed out.
	slots []*tensor.Vector
}

// NewReplyArena returns an arena pre-sized for n peers; it grows on demand
// past that.
func NewReplyArena(n int) *ReplyArena {
	a := &ReplyArena{slots: make([]*tensor.Vector, 0, n)}
	a.grow(n)
	return a
}

// ReplySlot returns the decode destination for peer index i, growing the
// slot table as needed. Implements rpc.ReplySlots: callers resolve slots
// sequentially before fanning out, per that interface's contract.
func (a *ReplyArena) ReplySlot(i int) *tensor.Vector {
	if i >= len(a.slots) {
		a.grow(i + 1)
	}
	return a.slots[i]
}

func (a *ReplyArena) grow(n int) {
	for len(a.slots) < n {
		a.slots = append(a.slots, new(tensor.Vector))
	}
}
