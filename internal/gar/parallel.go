package gar

import (
	"runtime"
	"sync"
)

// This file implements the deterministic work-partitioning executor shared by
// the GAR kernels. Work is split into contiguous index ranges — "each of the
// m cores processes a continuous share" (Section 4.3 of the paper), the same
// static partitioning Bobpp-style deterministic parallel solvers use — and
// every range writes only its own disjoint output slots, so results are
// bit-identical to a sequential run regardless of scheduling.
//
// Tasks run on a small persistent pool of goroutines instead of goroutines
// spawned per call: spawning allocates (closure + stack), and the aggregation
// hot path is required to be allocation-free in steady state. Task descriptors
// travel by value through a buffered channel, so dispatching allocates
// nothing.

// minParallelWork is the scalar-op threshold below which kernels stay on the
// calling goroutine; tiny inputs lose more to handoff than they gain from
// parallelism.
const minParallelWork = 1 << 16

// maxShares bounds the number of contiguous shares any kernel is split into,
// and therefore the per-share scratch an arena preallocates.
func maxShares() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

type poolTask struct {
	fn            func(share, lo, hi int)
	share, lo, hi int
	wg            *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan poolTask
)

func ensurePool() {
	poolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0) - 1
		if workers < 1 {
			workers = 1
		}
		poolTasks = make(chan poolTask, 4*workers)
		for i := 0; i < workers; i++ {
			go func() {
				for t := range poolTasks {
					t.fn(t.share, t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	})
}

// kernelWorkers returns the number of shares to split a kernel with the given
// total scalar-op count into, capped at limit (the scratch the caller owns).
func kernelWorkers(work, limit int) int {
	if work < minParallelWork {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn over [0, total) split into `workers` contiguous chunks;
// fn receives the chunk ordinal (for per-share scratch selection) and its
// index range. Chunk 0 runs on the calling goroutine; the rest are dispatched
// to the pool. fn must confine its writes to state owned by its index range
// or share. wg must be idle; it is reused so callers can keep one WaitGroup
// alive across calls. parallelFor returns only after every chunk completed.
// fn must not itself call parallelFor (the pool does not support nesting).
func parallelFor(total, workers int, wg *sync.WaitGroup, fn func(share, lo, hi int)) {
	if total <= 0 {
		return
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		fn(0, 0, total)
		return
	}
	ensurePool()
	chunk := (total + workers - 1) / workers
	share := 1
	for lo := chunk; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		poolTasks <- poolTask{fn: fn, share: share, lo: lo, hi: hi, wg: wg}
		share++
	}
	fn(0, 0, chunk)
	wg.Wait()
}
