//go:build amd64 && !purego

package gar

// useAsmDot gates the AVX2+FMA dot kernel on runtime CPU support (CPUID
// feature bits plus OS support for the YMM register state).
var useAsmDot = cpuSupportsAVX2FMA()

// cpuSupportsAVX2FMA reports whether the CPU and OS support the AVX2 and FMA
// instruction sets. Implemented in dot_amd64.s.
func cpuSupportsAVX2FMA() bool

// dotAsm returns the inner product of a and b (equal lengths) using
// 4-way-unrolled 256-bit fused multiply-adds. Implemented in dot_amd64.s.
func dotAsm(a, b []float64) float64
