package gar

import (
	"math"
	"testing"
)

// Golden tests: small inputs whose aggregation results are computed by hand,
// pinning the exact semantics of each rule.

// TestKrumGoldenScores verifies Krum's score computation on a worked
// example: n=5, f=1, so each vector's score sums squared distances to its
// n-f-2 = 2 closest neighbours.
func TestKrumGoldenScores(t *testing.T) {
	// 1-D points: 0, 1, 2, 10, 11.
	in := vecs([]float64{0}, []float64{1}, []float64{2}, []float64{10}, []float64{11})
	dist, err := pairwiseSquaredDistances(in)
	if err != nil {
		t.Fatal(err)
	}
	scores := krumScores(dist, 1)
	// By hand (squared distances, two closest neighbours each):
	//   0:  d(1)=1,  d(2)=4   -> 5
	//   1:  d(0)=1,  d(2)=1   -> 2
	//   2:  d(1)=1,  d(0)=4   -> 5
	//   10: d(11)=1, d(2)=64  -> 65
	//   11: d(10)=1, d(2)=81  -> 82
	want := []float64{5, 2, 5, 65, 82}
	for i := range want {
		if math.Abs(scores[i]-want[i]) > 1e-12 {
			t.Fatalf("score[%d] = %v, want %v (all %v)", i, scores[i], want[i], scores)
		}
	}
	// Krum must select the argmin: point 1.
	k, err := NewKrum(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := k.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("Krum selected %v, want 1", out[0])
	}
}

// TestMultiKrumGoldenSelection checks Multi-Krum's m = n-f selection and
// averaging on the same worked example.
func TestMultiKrumGoldenSelection(t *testing.T) {
	in := vecs([]float64{0}, []float64{1}, []float64{2}, []float64{10}, []float64{11})
	mk, err := NewMultiKrum(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// m = 4 lowest scores: {1 (2), 0 (5), 2 (5), 10 (65)} -> mean 3.25.
	out, err := mk.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-3.25) > 1e-12 {
		t.Fatalf("MultiKrum = %v, want 3.25", out[0])
	}
	sel, err := mk.Select(in)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 1 {
		t.Fatalf("best-scoring index = %d, want 1", sel[0])
	}
}

// TestMDAGoldenSubset: with n=5, f=1 the minimum-diameter 4-subset of
// {0, 1, 2, 3, 100} is {0,1,2,3}, average 1.5.
func TestMDAGoldenSubset(t *testing.T) {
	in := vecs([]float64{0}, []float64{1}, []float64{2}, []float64{3}, []float64{100})
	m, err := NewMDA(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1.5) > 1e-12 {
		t.Fatalf("MDA = %v, want 1.5", out[0])
	}
}

// TestTrimmedMeanGolden: n=5, f=1 trims the min and max per coordinate.
func TestTrimmedMeanGolden(t *testing.T) {
	in := vecs(
		[]float64{5, -100},
		[]float64{1, 2},
		[]float64{2, 3},
		[]float64{3, 4},
		[]float64{-50, 100},
	)
	tm, err := NewTrimmedMean(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tm.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	// Coordinate 0: sorted {-50,1,2,3,5} -> mean(1,2,3) = 2.
	// Coordinate 1: sorted {-100,2,3,4,100} -> mean(2,3,4) = 3.
	if math.Abs(out[0]-2) > 1e-12 || math.Abs(out[1]-3) > 1e-12 {
		t.Fatalf("TrimmedMean = %v, want [2 3]", out)
	}
}

// TestBulyanGoldenSmall: n=7, f=1 => k = n-2f = 5 selections, k' = k-2f = 3
// values averaged per coordinate around the median of the selected 5.
func TestBulyanGoldenSmall(t *testing.T) {
	// Six honest points near 0..5 and one far Byzantine point.
	in := vecs(
		[]float64{0}, []float64{1}, []float64{2},
		[]float64{3}, []float64{4}, []float64{5},
		[]float64{1000},
	)
	b, err := NewBulyan(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the inner selection order, the Byzantine 1000 can never
	// survive both the selection phase and the median-closest averaging.
	if out[0] < 0 || out[0] > 5 {
		t.Fatalf("Bulyan = %v, must stay within honest hull [0,5]", out[0])
	}
}

// TestPhocasGolden: n=5, f=1. Trimmed mean of {0,1,2,3,100} = mean(1,2,3)=2;
// the n-f=4 values closest to 2 are {0,1,2,3}, average 1.5.
func TestPhocasGolden(t *testing.T) {
	in := vecs([]float64{0}, []float64{1}, []float64{2}, []float64{3}, []float64{100})
	p, err := NewPhocas(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1.5) > 1e-12 {
		t.Fatalf("Phocas = %v, want 1.5", out[0])
	}
}

// TestGeoMedianGoldenTriangle: the geometric median of the vertices of an
// equilateral triangle is its centroid.
func TestGeoMedianGoldenTriangle(t *testing.T) {
	h := math.Sqrt(3) / 2
	in := vecs(
		[]float64{0, 0},
		[]float64{1, 0},
		[]float64{0.5, h},
	)
	g, err := NewGeoMedian(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.5) > 1e-3 || math.Abs(out[1]-h/3*1) > 0.05 {
		t.Fatalf("GeoMedian = %v, want ~[0.5 %.3f]", out, h/3)
	}
}

// TestMedianGoldenEvenTies: even n with duplicated middle values.
func TestMedianGoldenEvenTies(t *testing.T) {
	m, err := NewMedian(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Aggregate(vecs(
		[]float64{1}, []float64{2}, []float64{2},
		[]float64{2}, []float64{3}, []float64{9},
	))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Fatalf("Median = %v, want 2", out[0])
	}
}
