package gar

import (
	"math"
	"testing"

	"garfield/internal/tensor"
)

// Golden tests: small inputs whose aggregation results are computed by hand,
// pinning the exact semantics of each rule.

// TestKrumGoldenScores verifies Krum's score computation on a worked
// example: n=5, f=1, so each vector's score sums squared distances to its
// n-f-2 = 2 closest neighbours.
func TestKrumGoldenScores(t *testing.T) {
	// 1-D points: 0, 1, 2, 10, 11.
	in := vecs([]float64{0}, []float64{1}, []float64{2}, []float64{10}, []float64{11})
	dist, err := naivePairwiseSquaredDistances(in)
	if err != nil {
		t.Fatal(err)
	}
	scores := naiveKrumScores(dist, 1)
	// By hand (squared distances, two closest neighbours each):
	//   0:  d(1)=1,  d(2)=4   -> 5
	//   1:  d(0)=1,  d(2)=1   -> 2
	//   2:  d(1)=1,  d(0)=4   -> 5
	//   10: d(11)=1, d(2)=64  -> 65
	//   11: d(10)=1, d(2)=81  -> 82
	want := []float64{5, 2, 5, 65, 82}
	for i := range want {
		if math.Abs(scores[i]-want[i]) > 1e-12 {
			t.Fatalf("score[%d] = %v, want %v (all %v)", i, scores[i], want[i], scores)
		}
	}
	// Krum must select the argmin: point 1.
	k, err := NewKrum(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := k.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("Krum selected %v, want 1", out[0])
	}
}

// TestMultiKrumGoldenSelection checks Multi-Krum's m = n-f selection and
// averaging on the same worked example.
func TestMultiKrumGoldenSelection(t *testing.T) {
	in := vecs([]float64{0}, []float64{1}, []float64{2}, []float64{10}, []float64{11})
	mk, err := NewMultiKrum(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// m = 4 lowest scores: {1 (2), 0 (5), 2 (5), 10 (65)} -> mean 3.25.
	out, err := mk.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-3.25) > 1e-12 {
		t.Fatalf("MultiKrum = %v, want 3.25", out[0])
	}
	sel, err := mk.Select(in)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 1 {
		t.Fatalf("best-scoring index = %d, want 1", sel[0])
	}
}

// TestMDAGoldenSubset: with n=5, f=1 the minimum-diameter 4-subset of
// {0, 1, 2, 3, 100} is {0,1,2,3}, average 1.5.
func TestMDAGoldenSubset(t *testing.T) {
	in := vecs([]float64{0}, []float64{1}, []float64{2}, []float64{3}, []float64{100})
	m, err := NewMDA(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1.5) > 1e-12 {
		t.Fatalf("MDA = %v, want 1.5", out[0])
	}
}

// TestTrimmedMeanGolden: n=5, f=1 trims the min and max per coordinate.
func TestTrimmedMeanGolden(t *testing.T) {
	in := vecs(
		[]float64{5, -100},
		[]float64{1, 2},
		[]float64{2, 3},
		[]float64{3, 4},
		[]float64{-50, 100},
	)
	tm, err := NewTrimmedMean(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tm.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	// Coordinate 0: sorted {-50,1,2,3,5} -> mean(1,2,3) = 2.
	// Coordinate 1: sorted {-100,2,3,4,100} -> mean(2,3,4) = 3.
	if math.Abs(out[0]-2) > 1e-12 || math.Abs(out[1]-3) > 1e-12 {
		t.Fatalf("TrimmedMean = %v, want [2 3]", out)
	}
}

// TestBulyanGoldenSmall: n=7, f=1 => k = n-2f = 5 selections, k' = k-2f = 3
// values averaged per coordinate around the median of the selected 5.
func TestBulyanGoldenSmall(t *testing.T) {
	// Six honest points near 0..5 and one far Byzantine point.
	in := vecs(
		[]float64{0}, []float64{1}, []float64{2},
		[]float64{3}, []float64{4}, []float64{5},
		[]float64{1000},
	)
	b, err := NewBulyan(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the inner selection order, the Byzantine 1000 can never
	// survive both the selection phase and the median-closest averaging.
	if out[0] < 0 || out[0] > 5 {
		t.Fatalf("Bulyan = %v, must stay within honest hull [0,5]", out[0])
	}
}

// TestPhocasGolden: n=5, f=1. Trimmed mean of {0,1,2,3,100} = mean(1,2,3)=2;
// the n-f=4 values closest to 2 are {0,1,2,3}, average 1.5.
func TestPhocasGolden(t *testing.T) {
	in := vecs([]float64{0}, []float64{1}, []float64{2}, []float64{3}, []float64{100})
	p, err := NewPhocas(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1.5) > 1e-12 {
		t.Fatalf("Phocas = %v, want 1.5", out[0])
	}
}

// TestGeoMedianGoldenTriangle: the geometric median of the vertices of an
// equilateral triangle is its centroid.
func TestGeoMedianGoldenTriangle(t *testing.T) {
	h := math.Sqrt(3) / 2
	in := vecs(
		[]float64{0, 0},
		[]float64{1, 0},
		[]float64{0.5, h},
	)
	g, err := NewGeoMedian(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.5) > 1e-3 || math.Abs(out[1]-h/3*1) > 0.05 {
		t.Fatalf("GeoMedian = %v, want ~[0.5 %.3f]", out, h/3)
	}
}

// TestMedianGoldenEvenTies: even n with duplicated middle values.
func TestMedianGoldenEvenTies(t *testing.T) {
	m, err := NewMedian(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Aggregate(vecs(
		[]float64{1}, []float64{2}, []float64{2},
		[]float64{2}, []float64{3}, []float64{9},
	))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Fatalf("Median = %v, want 2", out[0])
	}
}

// --- Fast-path equivalence: Gram-kernel / scratch-arena rules vs the seed
// implementations preserved in reference_test.go ---

// attackInputs builds n d-dimensional inputs of which the last f follow the
// named Byzantine behaviour. All values are finite (NaN-poisoned inputs are
// rejected upstream by honest pipelines via Vector.IsFinite, and ordering
// under NaN is not part of any rule's contract).
func attackInputs(t *testing.T, kind string, n, f, d int, seed uint64) []tensor.Vector {
	t.Helper()
	rng := tensor.NewRNG(seed)
	in := make([]tensor.Vector, n)
	for i := range in {
		in[i] = rng.NormalVector(d, 0, 1)
	}
	switch kind {
	case "honest":
	case "huge":
		for i := n - f; i < n; i++ {
			in[i] = tensor.Filled(d, 1e9)
		}
	case "duplicate":
		// Colluding attackers submit bit-identical vectors, creating exact
		// distance ties.
		byz := rng.NormalVector(d, 5, 1)
		for i := n - f; i < n; i++ {
			in[i] = byz
		}
	case "reversed":
		// Sign-flipped copies of honest gradients.
		for i := n - f; i < n; i++ {
			in[i] = in[i-(n-f)].Scale(-4)
		}
	default:
		t.Fatalf("unknown attack kind %q", kind)
	}
	return in
}

func assertBitIdentical(t *testing.T, rule, kind string, got, want tensor.Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s/%s: dim %d != %d", rule, kind, len(got), len(want))
	}
	for c := range got {
		if math.Float64bits(got[c]) != math.Float64bits(want[c]) {
			t.Fatalf("%s/%s: coordinate %d: fast %v (%x) != naive %v (%x)",
				rule, kind, c, got[c], math.Float64bits(got[c]), want[c], math.Float64bits(want[c]))
		}
	}
}

// TestFastPathEquivalence locks the rebuilt hot path to the seed semantics:
// for every rule, odd and even n, and a set of attack input shapes, the
// arena-based Aggregate must produce bit-identical outputs to the naive seed
// implementation.
func TestFastPathEquivalence(t *testing.T) {
	const d = 257 // odd, exercises the unrolled kernels' tail paths
	kinds := []string{"honest", "huge", "duplicate", "reversed"}
	shapes := []struct{ n, f int }{{9, 2}, {12, 2}, {15, 3}, {16, 3}}
	for _, sh := range shapes {
		for _, kind := range kinds {
			n, f := sh.n, sh.f
			in := attackInputs(t, kind, n, f, d, uint64(31*n+f))

			krum, err := NewKrum(n, f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := krum.Aggregate(in)
			if err != nil {
				t.Fatal(err)
			}
			want, err := naiveKrum(f, in)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "krum", kind, got, want)

			mk, err := NewMultiKrum(n, f)
			if err != nil {
				t.Fatal(err)
			}
			got, err = mk.Aggregate(in)
			if err != nil {
				t.Fatal(err)
			}
			want, err = naiveMultiKrum(f, n-f, in)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "multikrum", kind, got, want)

			mda, err := NewMDA(n, f)
			if err != nil {
				t.Fatal(err)
			}
			got, err = mda.Aggregate(in)
			if err != nil {
				t.Fatal(err)
			}
			want, err = naiveMDA(n, f, in)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "mda", kind, got, want)

			if n >= 4*f+3 {
				bul, err := NewBulyan(n, f)
				if err != nil {
					t.Fatal(err)
				}
				got, err = bul.Aggregate(in)
				if err != nil {
					t.Fatal(err)
				}
				want, err = naiveBulyan(n, f, in)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, "bulyan", kind, got, want)
			}

			med, err := NewMedian(n, f)
			if err != nil {
				t.Fatal(err)
			}
			got, err = med.Aggregate(in)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "median", kind, got, naiveMedian(in))

			tm, err := NewTrimmedMean(n, f)
			if err != nil {
				t.Fatal(err)
			}
			got, err = tm.Aggregate(in)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "trimmedmean", kind, got, naiveTrimmedMean(n, f, in))

			ph, err := NewPhocas(n, f)
			if err != nil {
				t.Fatal(err)
			}
			got, err = ph.Aggregate(in)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "phocas", kind, got, naivePhocas(n, f, in))

			avg, err := NewAverage(n)
			if err != nil {
				t.Fatal(err)
			}
			got, err = avg.Aggregate(in)
			if err != nil {
				t.Fatal(err)
			}
			want, err = tensor.Mean(in)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "average", kind, got, want)
		}
	}
}

// TestAggregateIntoMatchesAggregate checks the output-reuse path returns the
// same result as the allocating path and actually reuses the destination.
func TestAggregateIntoMatchesAggregate(t *testing.T) {
	const n, f, d = 9, 2, 64
	in := attackInputs(t, "honest", n, f, d, 3)
	for _, name := range Names() {
		fUse := f
		switch name {
		case NameAverage:
			fUse = 0
		case NameBulyan:
			fUse = 1 // n >= 4f+3
		}
		r, err := New(name, n, fUse)
		if err != nil {
			t.Fatal(err)
		}
		want, err := r.Aggregate(in)
		if err != nil {
			t.Fatal(err)
		}
		dst := tensor.New(d)
		got, err := r.AggregateInto(dst, in)
		if err != nil {
			t.Fatal(err)
		}
		if &got[0] != &dst[0] {
			t.Fatalf("%s: AggregateInto did not reuse dst", name)
		}
		assertBitIdentical(t, name, "into", got, want)
	}
}

// TestAggregateSteadyStateZeroAlloc pins the tentpole property: once a rule's
// arena is warm and the caller reuses the output vector, Aggregate performs
// no allocation at all.
func TestAggregateSteadyStateZeroAlloc(t *testing.T) {
	const n, f, d = 9, 2, 512
	in := attackInputs(t, "honest", n, f, d, 5)
	rules := []string{NameKrum, NameMultiKrum, NameMDA, NameBulyan, NameMedian, NameTrimmedMean, NamePhocas, NameAverage}
	for _, name := range rules {
		fUse := f
		if name == NameAverage {
			fUse = 0
		}
		if name == NameBulyan {
			// n >= 4f+3: reuse the same inputs with a smaller f.
			fUse = 1
		}
		r, err := New(name, n, fUse)
		if err != nil {
			t.Fatal(err)
		}
		dst := tensor.New(d)
		// Warm up: first call may grow lazily-sized scratch.
		if _, err := r.AggregateInto(dst, in); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := r.AggregateInto(dst, in); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state AggregateInto allocs/op = %v, want 0", name, allocs)
		}
	}
}

// TestBulyanMedianInnerEquivalence covers the rebuilt inner-median selection
// path (arena median kernel + reused center scratch) against the seed
// formulation.
func TestBulyanMedianInnerEquivalence(t *testing.T) {
	const d = 129
	for _, sh := range []struct{ n, f int }{{11, 2}, {15, 3}, {16, 3}} {
		for _, kind := range []string{"honest", "huge", "duplicate", "reversed"} {
			in := attackInputs(t, kind, sh.n, sh.f, d, uint64(7*sh.n+sh.f))
			b, err := NewBulyanInner(sh.n, sh.f, NameMedian)
			if err != nil {
				t.Fatal(err)
			}
			got, err := b.Aggregate(in)
			if err != nil {
				t.Fatal(err)
			}
			want, err := naiveBulyanMedianInner(sh.n, sh.f, in)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "bulyan-median-inner", kind, got, want)
		}
	}
}

// TestGramCancellationGuard pins the noise-floor fallback: inputs clustered
// far from the origin make the Gram identity cancel catastrophically, and
// the kernel must fall back to direct subtract-square distances so selection
// still matches the seed exactly.
func TestGramCancellationGuard(t *testing.T) {
	const n, f, d = 9, 2, 300
	rng := tensor.NewRNG(21)
	in := make([]tensor.Vector, n)
	for i := range in {
		v := tensor.Filled(d, 1e6) // ||v||^2 ~ 3e14, pairwise d^2 ~ 1e-5
		for c := range v {
			v[c] += rng.Norm() * 1e-4
		}
		in[i] = v
	}
	krum, err := NewKrum(n, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := krum.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naiveKrum(f, in)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "krum", "offset-cluster", got, want)

	mk, err := NewMultiKrum(n, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err = mk.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err = naiveMultiKrum(f, n-f, in)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "multikrum", "offset-cluster", got, want)
}
