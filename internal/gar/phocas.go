package gar

import (
	"fmt"
	"math"
	"sort"

	"garfield/internal/tensor"
)

// Phocas (Xie et al. 2018, from the same robust-mean family as Median and
// TrimmedMean) is a two-step coordinate-wise rule: compute the f-trimmed
// mean per coordinate, then average the n-f values closest to it. Like
// GeoMedian it extends the paper's evaluated set, demonstrating the
// library's extensibility. It requires n >= 2f+1.
type Phocas struct {
	n, f int
}

var _ Rule = (*Phocas)(nil)

// NewPhocas returns a Phocas rule over n inputs tolerating f Byzantine ones.
func NewPhocas(n, f int) (*Phocas, error) {
	if f < 0 || n < 2*f+1 {
		return nil, fmt.Errorf("%w: phocas needs n >= 2f+1, got n=%d f=%d", ErrRequirement, n, f)
	}
	return &Phocas{n: n, f: f}, nil
}

// Name implements Rule.
func (p *Phocas) Name() string { return NamePhocas }

// N implements Rule.
func (p *Phocas) N() int { return p.n }

// F implements Rule.
func (p *Phocas) F() int { return p.f }

// Aggregate implements Rule.
func (p *Phocas) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(p, inputs)
	if err != nil {
		return nil, err
	}
	out := tensor.New(d)
	col := make([]float64, p.n)
	order := make([]int, p.n)
	keep := p.n - p.f
	trimKeep := float64(p.n - 2*p.f)
	for c := 0; c < d; c++ {
		for i, v := range inputs {
			col[i] = v[c]
		}
		// Step 1: f-trimmed mean of the coordinate.
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return col[order[a]] < col[order[b]] })
		var tm float64
		for _, idx := range order[p.f : p.n-p.f] {
			tm += col[idx]
		}
		tm /= trimKeep
		// Step 2: average the n-f values closest to the trimmed mean.
		sort.Slice(order, func(a, b int) bool {
			return math.Abs(col[order[a]]-tm) < math.Abs(col[order[b]]-tm)
		})
		var s float64
		for _, idx := range order[:keep] {
			s += col[idx]
		}
		out[c] = s / float64(keep)
	}
	return out, nil
}
