package gar

import (
	"fmt"

	"garfield/internal/tensor"
)

// Phocas (Xie et al. 2018, from the same robust-mean family as Median and
// TrimmedMean) is a two-step coordinate-wise rule: compute the f-trimmed
// mean per coordinate, then average the n-f values closest to it. Like
// GeoMedian it extends the paper's evaluated set, demonstrating the
// library's extensibility. It requires n >= 2f+1.
type Phocas struct {
	n, f int
	s    *arena
}

var _ Rule = (*Phocas)(nil)

// NewPhocas returns a Phocas rule over n inputs tolerating f Byzantine ones.
func NewPhocas(n, f int) (*Phocas, error) {
	if f < 0 || n < 2*f+1 {
		return nil, fmt.Errorf("%w: phocas needs n >= 2f+1, got n=%d f=%d", ErrRequirement, n, f)
	}
	return &Phocas{n: n, f: f, s: newArena(n)}, nil
}

// Name implements Rule.
func (p *Phocas) Name() string { return NamePhocas }

// N implements Rule.
func (p *Phocas) N() int { return p.n }

// F implements Rule.
func (p *Phocas) F() int { return p.f }

// Aggregate implements Rule.
func (p *Phocas) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	return p.AggregateInto(nil, inputs)
}

// AggregateInto implements Rule.
func (p *Phocas) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(p, inputs)
	if err != nil {
		return nil, err
	}
	p.s.mu.Lock()
	defer p.s.mu.Unlock()
	dst = tensor.Resize(dst, d)
	a := p.s
	a.cIn = append(a.cIn[:0], inputs...)
	a.cOut = dst
	a.cTrim = p.f
	a.cKeep = p.n - p.f
	a.runCoordinate(a.phocasFn, d, 4*p.n)
	return dst, nil
}
