// Package gar implements the statistically-robust gradient aggregation rules
// (GARs) at the heart of Garfield (Section 3.1 of the paper): coordinate-wise
// Median, Krum and Multi-Krum, MDA (minimum-diameter averaging) and Bulyan,
// together with the non-resilient Average baseline and a TrimmedMean
// extension.
//
// A GAR is a function (R^d)^q -> R^d: it takes q input vectors of which at
// most f may be Byzantine, and outputs one vector with statistical guarantees
// that make it safe to apply as an SGD step. Every rule validates the paper's
// resilience precondition relating n and f at construction time:
//
//	Average      f == 0      O(nd)
//	Median       n >= 2f+1   O(nd) best, O(n^2 d) worst
//	TrimmedMean  n >= 2f+1   O(nd log n)
//	Krum         n >= 2f+3   O(n^2 d)
//	Multi-Krum   n >= 2f+3   O(n^2 d)
//	MDA          n >= 2f+1   O(C(n,f) + n^2 d)
//	Bulyan       n >= 4f+3   O(n^2 d)
package gar

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"garfield/internal/tensor"
)

// Rule is the common interface of all aggregation rules. It mirrors the
// paper's two-call interface: construction plays the role of init(name, n, f)
// and Aggregate plays the role of aggregate(tensors...).
type Rule interface {
	// Name returns the canonical lower-case rule name ("median", ...).
	Name() string
	// N returns the expected number of input vectors.
	N() int
	// F returns the declared maximum number of Byzantine inputs.
	F() int
	// Aggregate combines exactly N() input vectors into one output vector.
	Aggregate(inputs []tensor.Vector) (tensor.Vector, error)
}

var (
	// ErrRequirement is returned when (n, f) violate a rule's resilience
	// precondition.
	ErrRequirement = errors.New("gar: resilience requirement violated")

	// ErrInputCount is returned when Aggregate receives a number of vectors
	// different from the configured n.
	ErrInputCount = errors.New("gar: wrong number of input vectors")

	// ErrUnknownRule is returned by New for an unrecognized rule name.
	ErrUnknownRule = errors.New("gar: unknown rule")
)

// Names of the built-in rules, accepted by New.
const (
	NameAverage     = "average"
	NameMedian      = "median"
	NameTrimmedMean = "trimmedmean"
	NameKrum        = "krum"
	NameMultiKrum   = "multikrum"
	NameMDA         = "mda"
	NameBulyan      = "bulyan"
	NameGeoMedian   = "geomedian"
	NamePhocas      = "phocas"
)

// New constructs a rule by name, the equivalent of the paper's
// init(name, n, f). Recognized names are listed as Name* constants.
func New(name string, n, f int) (Rule, error) {
	switch strings.ToLower(name) {
	case NameAverage:
		return NewAverage(n)
	case NameMedian:
		return NewMedian(n, f)
	case NameTrimmedMean:
		return NewTrimmedMean(n, f)
	case NameKrum:
		return NewKrum(n, f)
	case NameMultiKrum:
		return NewMultiKrum(n, f)
	case NameMDA:
		return NewMDA(n, f)
	case NameBulyan:
		return NewBulyan(n, f)
	case NameGeoMedian:
		return NewGeoMedian(n, f)
	case NamePhocas:
		return NewPhocas(n, f)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
}

// Names returns the list of rule names New accepts, in a stable order.
func Names() []string {
	return []string{
		NameAverage, NameMedian, NameTrimmedMean,
		NameKrum, NameMultiKrum, NameMDA, NameBulyan,
		NameGeoMedian, NamePhocas,
	}
}

// MinN returns the smallest number of inputs the named rule accepts for a
// given f (the paper's q >= g(f) requirements).
func MinN(name string, f int) (int, error) {
	switch strings.ToLower(name) {
	case NameAverage:
		return 1, nil
	case NameMedian, NameMDA, NameTrimmedMean, NameGeoMedian, NamePhocas:
		return 2*f + 1, nil
	case NameKrum, NameMultiKrum:
		return 2*f + 3, nil
	case NameBulyan:
		return 4*f + 3, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
}

func checkInputs(r Rule, inputs []tensor.Vector) (int, error) {
	if len(inputs) != r.N() {
		return 0, fmt.Errorf("%w: %s expects %d, got %d", ErrInputCount, r.Name(), r.N(), len(inputs))
	}
	d, err := tensor.CheckSameDim(inputs)
	if err != nil {
		return 0, fmt.Errorf("gar: %s: %w", r.Name(), err)
	}
	return d, nil
}

// pairwiseSquaredDistances computes the full symmetric matrix of squared
// Euclidean distances between the inputs. Results are cached per Aggregate
// call by the rules that need them (Krum, Multi-Krum, MDA, Bulyan), matching
// the memory-management optimization described in Section 4.4 of the paper.
// For large inputs the n(n-1)/2 distance computations — the O(n^2 d) term of
// those rules — are spread across the available cores.
func pairwiseSquaredDistances(vs []tensor.Vector) ([][]float64, error) {
	n := len(vs)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	type pair struct{ i, j int }
	pairs := make([]pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	d := 0
	if n > 0 {
		d = len(vs[0])
	}
	workers := runtime.GOMAXPROCS(0)
	// Parallelism only pays off once the total work is substantial.
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if len(pairs)*d < 1<<16 {
		workers = 1
	}
	if workers <= 1 {
		for _, p := range pairs {
			d2, err := vs[p.i].SquaredDistance(vs[p.j])
			if err != nil {
				return nil, err
			}
			m[p.i][p.j] = d2
			m[p.j][p.i] = d2
		}
		return m, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		w := w
		wg.Add(1)
		go func(ps []pair) {
			defer wg.Done()
			for _, p := range ps {
				d2, err := vs[p.i].SquaredDistance(vs[p.j])
				if err != nil {
					errs[w] = err
					return
				}
				m[p.i][p.j] = d2
				m[p.j][p.i] = d2
			}
		}(pairs[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// krumScores computes, for each input, the sum of squared distances to its
// n-f-2 closest neighbours (the Krum score; lower is better).
func krumScores(dist [][]float64, f int) []float64 {
	n := len(dist)
	k := n - f - 2 // number of neighbours summed
	scores := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, dist[i][j])
			}
		}
		sort.Float64s(row)
		var s float64
		for _, d2 := range row[:k] {
			s += d2
		}
		scores[i] = s
	}
	return scores
}

// argsortAscending returns the indices that would sort xs ascending.
func argsortAscending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}
