// Package gar implements the statistically-robust gradient aggregation rules
// (GARs) at the heart of Garfield (Section 3.1 of the paper): coordinate-wise
// Median, Krum and Multi-Krum, MDA (minimum-diameter averaging) and Bulyan,
// together with the non-resilient Average baseline and a TrimmedMean
// extension.
//
// A GAR is a function (R^d)^q -> R^d: it takes q input vectors of which at
// most f may be Byzantine, and outputs one vector with statistical guarantees
// that make it safe to apply as an SGD step. Every rule validates the paper's
// resilience precondition relating n and f at construction time:
//
//	Average      f == 0      O(nd)
//	Median       n >= 2f+1   O(nd) best, O(n^2 d) worst
//	TrimmedMean  n >= 2f+1   O(nd log n)
//	Krum         n >= 2f+3   O(n^2 d)
//	Multi-Krum   n >= 2f+3   O(n^2 d)
//	MDA          n >= 2f+1   O(C(n,f) + n^2 d)
//	Bulyan       n >= 4f+3   O(n^2 d)
//
// The O(n^2 d) rules share a Gram-matrix distance kernel and a per-rule
// scratch arena (see scratch.go), making steady-state aggregation through
// AggregateInto allocation-free — the memory-management discipline of
// Section 4.4 of the paper.
package gar

import (
	"errors"
	"fmt"
	"strings"

	"garfield/internal/tensor"
)

// Rule is the common interface of all aggregation rules. It mirrors the
// paper's two-call interface: construction plays the role of init(name, n, f)
// and Aggregate plays the role of aggregate(tensors...).
//
// A Rule value owns preallocated scratch state: Aggregate calls on one value
// are serialized internally, so sharing a Rule across goroutines is safe but
// not parallel. Callers wanting concurrent aggregation should construct one
// Rule per goroutine.
type Rule interface {
	// Name returns the canonical lower-case rule name ("median", ...).
	Name() string
	// N returns the expected number of input vectors.
	N() int
	// F returns the declared maximum number of Byzantine inputs.
	F() int
	// Aggregate combines exactly N() input vectors into one freshly
	// allocated output vector.
	Aggregate(inputs []tensor.Vector) (tensor.Vector, error)
	// AggregateInto is Aggregate with caller-owned output storage: the
	// result is written into dst when dst's capacity suffices, and into a
	// fresh vector otherwise; the written vector is returned. dst may be
	// nil and must not alias any input. Reusing one dst across calls makes
	// steady-state aggregation allocation-free.
	AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error)
}

var (
	// ErrRequirement is returned when (n, f) violate a rule's resilience
	// precondition.
	ErrRequirement = errors.New("gar: resilience requirement violated")

	// ErrInputCount is returned when Aggregate receives a number of vectors
	// different from the configured n.
	ErrInputCount = errors.New("gar: wrong number of input vectors")

	// ErrUnknownRule is returned by New for an unrecognized rule name.
	ErrUnknownRule = errors.New("gar: unknown rule")
)

// Names of the built-in rules, accepted by New.
const (
	NameAverage     = "average"
	NameMedian      = "median"
	NameTrimmedMean = "trimmedmean"
	NameKrum        = "krum"
	NameMultiKrum   = "multikrum"
	NameMDA         = "mda"
	NameBulyan      = "bulyan"
	NameGeoMedian   = "geomedian"
	NamePhocas      = "phocas"
)

// New constructs a rule by name, the equivalent of the paper's
// init(name, n, f). Recognized names are listed as Name* constants.
func New(name string, n, f int) (Rule, error) {
	switch strings.ToLower(name) {
	case NameAverage:
		return NewAverage(n)
	case NameMedian:
		return NewMedian(n, f)
	case NameTrimmedMean:
		return NewTrimmedMean(n, f)
	case NameKrum:
		return NewKrum(n, f)
	case NameMultiKrum:
		return NewMultiKrum(n, f)
	case NameMDA:
		return NewMDA(n, f)
	case NameBulyan:
		return NewBulyan(n, f)
	case NameGeoMedian:
		return NewGeoMedian(n, f)
	case NamePhocas:
		return NewPhocas(n, f)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
}

// Names returns the list of rule names New accepts, in a stable order.
func Names() []string {
	return []string{
		NameAverage, NameMedian, NameTrimmedMean,
		NameKrum, NameMultiKrum, NameMDA, NameBulyan,
		NameGeoMedian, NamePhocas,
	}
}

// MinN returns the smallest number of inputs the named rule accepts for a
// given f (the paper's q >= g(f) requirements).
func MinN(name string, f int) (int, error) {
	switch strings.ToLower(name) {
	case NameAverage:
		return 1, nil
	case NameMedian, NameMDA, NameTrimmedMean, NameGeoMedian, NamePhocas:
		return 2*f + 1, nil
	case NameKrum, NameMultiKrum:
		return 2*f + 3, nil
	case NameBulyan:
		return 4*f + 3, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
}

func checkInputs(r Rule, inputs []tensor.Vector) (int, error) {
	if len(inputs) != r.N() {
		return 0, fmt.Errorf("%w: %s expects %d, got %d", ErrInputCount, r.Name(), r.N(), len(inputs))
	}
	d, err := tensor.CheckSameDim(inputs)
	if err != nil {
		return 0, fmt.Errorf("gar: %s: %w", r.Name(), err)
	}
	return d, nil
}
