package gar

import (
	"errors"
	"fmt"
	"strings"

	"garfield/internal/tensor"
)

// Rule is the common interface of all aggregation rules. It mirrors the
// paper's two-call interface: construction plays the role of init(name, n, f)
// and Aggregate plays the role of aggregate(tensors...).
//
// A Rule value owns preallocated scratch state: Aggregate calls on one value
// are serialized internally, so sharing a Rule across goroutines is safe but
// not parallel. Callers wanting concurrent aggregation should construct one
// Rule per goroutine.
type Rule interface {
	// Name returns the canonical lower-case rule name ("median", ...).
	Name() string
	// N returns the expected number of input vectors.
	N() int
	// F returns the declared maximum number of Byzantine inputs.
	F() int
	// Aggregate combines exactly N() input vectors into one freshly
	// allocated output vector.
	Aggregate(inputs []tensor.Vector) (tensor.Vector, error)
	// AggregateInto is Aggregate with caller-owned output storage: the
	// result is written into dst when dst's capacity suffices, and into a
	// fresh vector otherwise; the written vector is returned. dst may be
	// nil and must not alias any input. Reusing one dst across calls makes
	// steady-state aggregation allocation-free.
	AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error)
}

var (
	// ErrRequirement is returned when (n, f) violate a rule's resilience
	// precondition.
	ErrRequirement = errors.New("gar: resilience requirement violated")

	// ErrInputCount is returned when Aggregate receives a number of vectors
	// different from the configured n.
	ErrInputCount = errors.New("gar: wrong number of input vectors")

	// ErrUnknownRule is returned by New for an unrecognized rule name.
	ErrUnknownRule = errors.New("gar: unknown rule")
)

// Names of the built-in rules, accepted by New.
const (
	NameAverage     = "average"
	NameMedian      = "median"
	NameTrimmedMean = "trimmedmean"
	NameKrum        = "krum"
	NameMultiKrum   = "multikrum"
	NameMDA         = "mda"
	NameBulyan      = "bulyan"
	NameGeoMedian   = "geomedian"
	NamePhocas      = "phocas"
)

// New constructs a rule by name, the equivalent of the paper's
// init(name, n, f). Recognized names are listed as Name* constants.
func New(name string, n, f int) (Rule, error) {
	switch strings.ToLower(name) {
	case NameAverage:
		return NewAverage(n)
	case NameMedian:
		return NewMedian(n, f)
	case NameTrimmedMean:
		return NewTrimmedMean(n, f)
	case NameKrum:
		return NewKrum(n, f)
	case NameMultiKrum:
		return NewMultiKrum(n, f)
	case NameMDA:
		return NewMDA(n, f)
	case NameBulyan:
		return NewBulyan(n, f)
	case NameGeoMedian:
		return NewGeoMedian(n, f)
	case NamePhocas:
		return NewPhocas(n, f)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
}

// Names returns the list of rule names New accepts, in a stable order.
func Names() []string {
	return []string{
		NameAverage, NameMedian, NameTrimmedMean,
		NameKrum, NameMultiKrum, NameMDA, NameBulyan,
		NameGeoMedian, NamePhocas,
	}
}

// MinN returns the smallest number of inputs the named rule accepts for a
// given f (the paper's q >= g(f) requirements).
func MinN(name string, f int) (int, error) {
	switch strings.ToLower(name) {
	case NameAverage:
		return 1, nil
	case NameMedian, NameMDA, NameTrimmedMean, NameGeoMedian, NamePhocas:
		return 2*f + 1, nil
	case NameKrum, NameMultiKrum:
		return 2*f + 3, nil
	case NameBulyan:
		return 4*f + 3, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
}

// CoordinateWise reports whether the named rule computes every output
// coordinate from the matching input coordinates alone — the property that
// makes coordinate-space sharding exact: aggregating each contiguous slice
// independently and concatenating the results is bit-identical to running
// the rule over the full vectors. Selection rules (Krum, MultiKrum, MDA,
// Bulyan) and GeoMedian score whole vectors by L2 geometry and are not
// coordinate-wise; they shard hierarchically instead (see internal/shard).
func CoordinateWise(name string) bool {
	switch strings.ToLower(name) {
	case NameAverage, NameMedian, NameTrimmedMean, NamePhocas:
		return true
	default:
		return false
	}
}

func checkInputs(r Rule, inputs []tensor.Vector) (int, error) {
	if len(inputs) != r.N() {
		return 0, fmt.Errorf("%w: %s expects %d, got %d", ErrInputCount, r.Name(), r.N(), len(inputs))
	}
	d, err := tensor.CheckSameDim(inputs)
	if err != nil {
		return 0, fmt.Errorf("gar: %s: %w", r.Name(), err)
	}
	return d, nil
}
