package gar

import (
	"fmt"
	"sort"

	"garfield/internal/tensor"
)

// TrimmedMean (Yin et al., 2018) discards, per coordinate, the f largest and
// f smallest values and averages the rest. It is not part of the paper's
// evaluated set but belongs to the robust-aggregation family the paper cites;
// it is included to demonstrate that Garfield "can straightforwardly include
// the other [GARs]" (Section 7). It requires n >= 2f+1.
type TrimmedMean struct {
	n, f int
	s    *arena
}

var _ Rule = (*TrimmedMean)(nil)

// NewTrimmedMean returns a trimmed-mean rule over n inputs trimming f from
// each tail.
func NewTrimmedMean(n, f int) (*TrimmedMean, error) {
	if f < 0 || n < 2*f+1 {
		return nil, fmt.Errorf("%w: trimmedmean needs n >= 2f+1, got n=%d f=%d", ErrRequirement, n, f)
	}
	return &TrimmedMean{n: n, f: f, s: newArena(n)}, nil
}

// Name implements Rule.
func (t *TrimmedMean) Name() string { return NameTrimmedMean }

// N implements Rule.
func (t *TrimmedMean) N() int { return t.n }

// F implements Rule.
func (t *TrimmedMean) F() int { return t.f }

// Aggregate implements Rule.
func (t *TrimmedMean) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	return t.AggregateInto(nil, inputs)
}

// AggregateInto implements Rule.
func (t *TrimmedMean) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(t, inputs)
	if err != nil {
		return nil, err
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	dst = tensor.Resize(dst, d)
	col := t.s.shareCols[0][:t.n]
	keep := float64(t.n - 2*t.f)
	for c := 0; c < d; c++ {
		for i, v := range inputs {
			col[i] = v[c]
		}
		sort.Float64s(col)
		var s float64
		for _, x := range col[t.f : t.n-t.f] {
			s += x
		}
		dst[c] = s / keep
	}
	return dst, nil
}
