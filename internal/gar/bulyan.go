package gar

import (
	"fmt"
	"math"

	"garfield/internal/tensor"
)

// Bulyan (El Mhamdi et al., ICML 2018) hardens another Byzantine-resilient
// GAR against high-dimensional "hidden" attacks. It iterates an inner
// selection rule (Multi-Krum by default, as in the paper) k = n - 2f times,
// each time extracting the selected gradient; it then computes the
// coordinate-wise median of the k selections and, per coordinate, averages
// the k' = k - 2f values closest to that median. It requires n >= 4f+3.
type Bulyan struct {
	n, f  int
	inner string // inner selection rule: NameMultiKrum or NameMedian
	s     *arena

	// center is the inner-median selection's coordinate-wise median
	// scratch (d-sized, grown on first use and reused across calls).
	center tensor.Vector
}

var _ Rule = (*Bulyan)(nil)

// NewBulyan returns a Bulyan rule with Multi-Krum as the inner selection
// rule, the configuration evaluated in the paper.
func NewBulyan(n, f int) (*Bulyan, error) {
	return NewBulyanInner(n, f, NameMultiKrum)
}

// NewBulyanInner returns a Bulyan rule with an explicit inner selection rule
// ("multikrum" or "median"). The choice is the subject of one of the design
// ablation benches.
func NewBulyanInner(n, f int, inner string) (*Bulyan, error) {
	if f < 0 || n < 4*f+3 {
		return nil, fmt.Errorf("%w: bulyan needs n >= 4f+3, got n=%d f=%d", ErrRequirement, n, f)
	}
	switch inner {
	case NameMultiKrum, NameMedian:
	default:
		return nil, fmt.Errorf("%w: bulyan inner rule %q (want multikrum or median)", ErrUnknownRule, inner)
	}
	return &Bulyan{n: n, f: f, inner: inner, s: newArena(n)}, nil
}

// Name implements Rule.
func (b *Bulyan) Name() string { return NameBulyan }

// N implements Rule.
func (b *Bulyan) N() int { return b.n }

// F implements Rule.
func (b *Bulyan) F() int { return b.f }

// Inner returns the name of the inner selection rule.
func (b *Bulyan) Inner() string { return b.inner }

// Aggregate implements Rule.
func (b *Bulyan) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	return b.AggregateInto(nil, inputs)
}

// AggregateInto implements Rule.
func (b *Bulyan) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(b, inputs)
	if err != nil {
		return nil, err
	}
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	k := b.n - 2*b.f // number of selection iterations
	selected, err := b.selectK(inputs, k, d)
	if err != nil {
		return nil, err
	}
	// Coordinate-wise median of the k selected gradients, then average of
	// the k' = k - 2f values closest to the median, per coordinate — the
	// coordinate-sharded bulyanKernel.
	dst = tensor.Resize(dst, d)
	a := b.s
	a.cIn = append(a.cIn[:0], selected...)
	a.cOut = dst
	a.cKPrime = k - 2*b.f
	a.runCoordinate(a.bulyanFn, d, 4*k)
	a.selected = clearVectors(a.selected)
	return dst, nil
}

// selectK runs the inner rule k times, each time extracting the selected
// gradient and removing it from the pool. The full distance matrix is
// computed once; eliminations only update the alive-index view, so no
// distance is ever recomputed across iterations — the caching described in
// Section 4.4 of the paper. The arena lock must be held; the result aliases
// b.s.selected.
func (b *Bulyan) selectK(inputs []tensor.Vector, k, d int) ([]tensor.Vector, error) {
	a := b.s
	a.computeDistances(inputs, d)
	alive := a.alive[:0]
	for i := range inputs {
		alive = append(alive, i)
	}
	selected := a.selected[:0]
	for iter := 0; iter < k; iter++ {
		pick, err := b.selectOne(alive, inputs)
		if err != nil {
			return nil, err
		}
		selected = append(selected, inputs[alive[pick]])
		alive = append(alive[:pick], alive[pick+1:]...)
	}
	a.alive = alive[:0]
	a.selected = selected
	return selected, nil
}

// selectOne returns the position (within alive) of the gradient the inner
// rule selects from the current pool.
func (b *Bulyan) selectOne(alive []int, inputs []tensor.Vector) (int, error) {
	a := b.s
	q := len(alive)
	switch b.inner {
	case NameMultiKrum:
		// Krum score within the pool: sum of squared distances to the
		// q-f-2 closest pool neighbours. The cached distance matrix is
		// re-indexed through alive, so no distance is recomputed.
		kNeighbours := q - b.f - 2
		if kNeighbours < 1 {
			kNeighbours = 1
		}
		n := a.n
		best := -1
		bestScore := math.Inf(1)
		for i := 0; i < q; i++ {
			row := a.row[:0]
			base := alive[i] * n
			for j := 0; j < q; j++ {
				if j != i {
					row = append(row, a.dist[base+alive[j]])
				}
			}
			if s := sumSmallestK(row, kNeighbours); s < bestScore {
				bestScore = s
				best = i
			}
		}
		return best, nil
	case NameMedian:
		// Pick the pool element closest (in L2) to the coordinate-wise
		// median of the pool, computed through the arena's median kernel
		// (same order statistics as the Median rule, no per-iteration
		// rule or pool construction).
		pool := a.chosen[:0]
		for _, idx := range alive {
			pool = append(pool, inputs[idx])
		}
		d := len(inputs[0])
		b.center = tensor.Resize(b.center, d)
		a.cIn = append(a.cIn[:0], pool...)
		a.cOut = b.center
		a.runCoordinate(a.medianFn, d, 2*q)
		best := 0
		bestD := math.Inf(1)
		for i, v := range pool {
			d2, err := v.SquaredDistance(b.center)
			if err != nil {
				a.chosen = clearVectors(pool)
				return 0, err
			}
			if d2 < bestD {
				bestD = d2
				best = i
			}
		}
		a.chosen = clearVectors(pool)
		return best, nil
	default:
		return 0, fmt.Errorf("%w: bulyan inner rule %q", ErrUnknownRule, b.inner)
	}
}
