package gar

import (
	"fmt"
	"math"
	"sort"

	"garfield/internal/tensor"
)

// Bulyan (El Mhamdi et al., ICML 2018) hardens another Byzantine-resilient
// GAR against high-dimensional "hidden" attacks. It iterates an inner
// selection rule (Multi-Krum by default, as in the paper) k = n - 2f times,
// each time extracting the selected gradient; it then computes the
// coordinate-wise median of the k selections and, per coordinate, averages
// the k' = k - 2f values closest to that median. It requires n >= 4f+3.
type Bulyan struct {
	n, f  int
	inner string // inner selection rule: NameMultiKrum or NameMedian
}

var _ Rule = (*Bulyan)(nil)

// NewBulyan returns a Bulyan rule with Multi-Krum as the inner selection
// rule, the configuration evaluated in the paper.
func NewBulyan(n, f int) (*Bulyan, error) {
	return NewBulyanInner(n, f, NameMultiKrum)
}

// NewBulyanInner returns a Bulyan rule with an explicit inner selection rule
// ("multikrum" or "median"). The choice is the subject of one of the design
// ablation benches.
func NewBulyanInner(n, f int, inner string) (*Bulyan, error) {
	if f < 0 || n < 4*f+3 {
		return nil, fmt.Errorf("%w: bulyan needs n >= 4f+3, got n=%d f=%d", ErrRequirement, n, f)
	}
	switch inner {
	case NameMultiKrum, NameMedian:
	default:
		return nil, fmt.Errorf("%w: bulyan inner rule %q (want multikrum or median)", ErrUnknownRule, inner)
	}
	return &Bulyan{n: n, f: f, inner: inner}, nil
}

// Name implements Rule.
func (b *Bulyan) Name() string { return NameBulyan }

// N implements Rule.
func (b *Bulyan) N() int { return b.n }

// F implements Rule.
func (b *Bulyan) F() int { return b.f }

// Inner returns the name of the inner selection rule.
func (b *Bulyan) Inner() string { return b.inner }

// Aggregate implements Rule.
func (b *Bulyan) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(b, inputs)
	if err != nil {
		return nil, err
	}
	k := b.n - 2*b.f // number of selection iterations
	selected, err := b.selectK(inputs, k)
	if err != nil {
		return nil, err
	}
	// Coordinate-wise median of the k selected gradients, then average of
	// the k' = k - 2f values closest to the median, per coordinate.
	kPrime := k - 2*b.f
	out := tensor.New(d)
	col := make([]float64, k)
	order := make([]int, k)
	for c := 0; c < d; c++ {
		for i, v := range selected {
			col[i] = v[c]
		}
		med := medianOfSorted(col, order)
		// Average the kPrime values closest to med.
		sort.Slice(order, func(a, bb int) bool {
			return math.Abs(col[order[a]]-med) < math.Abs(col[order[bb]]-med)
		})
		var s float64
		for _, idx := range order[:kPrime] {
			s += col[idx]
		}
		out[c] = s / float64(kPrime)
	}
	return out, nil
}

// selectK runs the inner rule k times, each time extracting the selected
// gradient and removing it from the pool, caching distance computations
// across iterations as described in Section 4.4 of the paper.
func (b *Bulyan) selectK(inputs []tensor.Vector, k int) ([]tensor.Vector, error) {
	dist, err := pairwiseSquaredDistances(inputs)
	if err != nil {
		return nil, fmt.Errorf("gar: bulyan: %w", err)
	}
	alive := make([]int, len(inputs)) // indices into inputs still in the pool
	for i := range alive {
		alive[i] = i
	}
	selected := make([]tensor.Vector, 0, k)
	for iter := 0; iter < k; iter++ {
		pick, err := b.selectOne(dist, alive, inputs)
		if err != nil {
			return nil, err
		}
		selected = append(selected, inputs[alive[pick]])
		alive = append(alive[:pick], alive[pick+1:]...)
	}
	return selected, nil
}

// selectOne returns the position (within alive) of the gradient the inner
// rule selects from the current pool.
func (b *Bulyan) selectOne(dist [][]float64, alive []int, inputs []tensor.Vector) (int, error) {
	q := len(alive)
	switch b.inner {
	case NameMultiKrum:
		// Krum score within the pool: sum of squared distances to the
		// q-f-2 closest pool neighbours. The cached full distance matrix is
		// re-indexed through alive, so no distance is recomputed.
		kNeighbours := q - b.f - 2
		if kNeighbours < 1 {
			kNeighbours = 1
		}
		best := -1
		bestScore := math.Inf(1)
		row := make([]float64, 0, q-1)
		for i := 0; i < q; i++ {
			row = row[:0]
			for j := 0; j < q; j++ {
				if j != i {
					row = append(row, dist[alive[i]][alive[j]])
				}
			}
			sort.Float64s(row)
			var s float64
			for _, d2 := range row[:kNeighbours] {
				s += d2
			}
			if s < bestScore {
				bestScore = s
				best = i
			}
		}
		return best, nil
	case NameMedian:
		// Pick the pool element closest (in L2) to the coordinate-wise
		// median of the pool.
		pool := make([]tensor.Vector, q)
		for i, idx := range alive {
			pool[i] = inputs[idx]
		}
		med, err := NewMedian(q, 0)
		if err != nil {
			return 0, fmt.Errorf("gar: bulyan inner median: %w", err)
		}
		center, err := med.Aggregate(pool)
		if err != nil {
			return 0, fmt.Errorf("gar: bulyan inner median: %w", err)
		}
		best := 0
		bestD := math.Inf(1)
		for i, v := range pool {
			d2, err := v.SquaredDistance(center)
			if err != nil {
				return 0, err
			}
			if d2 < bestD {
				bestD = d2
				best = i
			}
		}
		return best, nil
	default:
		return 0, fmt.Errorf("%w: bulyan inner rule %q", ErrUnknownRule, b.inner)
	}
}

// medianOfSorted returns the median of col using order as scratch index
// space; col is left unmodified.
func medianOfSorted(col []float64, order []int) float64 {
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return col[order[a]] < col[order[b]] })
	n := len(col)
	if n%2 == 1 {
		return col[order[n/2]]
	}
	return 0.5 * (col[order[n/2-1]] + col[order[n/2]])
}
