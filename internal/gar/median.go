package gar

import (
	"fmt"

	"garfield/internal/tensor"
)

// Median computes the coordinate-wise median of the inputs (Xie et al.'s
// generalized Byzantine-tolerant SGD). It requires n >= 2f+1.
//
// The implementation mirrors the paper's two execution strategies
// (Section 4.3): coordinates are split into contiguous shares processed by
// parallel workers (the CPU strategy: "each of the m cores processes a
// continuous share of n/m coordinates"), and per-coordinate selection uses a
// branch-minimal network for small n — the Go analogue of the paper's SIMT
// selection-instruction trick — falling back to introselect-style
// quickselect for larger n.
type Median struct {
	n, f int
	s    *arena

	// parallel controls whether coordinate shares are processed by multiple
	// goroutines. It exists so the ablation benchmark can compare the
	// sequential and parallel designs; production callers leave it true.
	parallel bool
}

var _ Rule = (*Median)(nil)

// NewMedian returns a coordinate-wise median over n inputs tolerating f
// Byzantine ones.
func NewMedian(n, f int) (*Median, error) {
	if f < 0 || n < 2*f+1 {
		return nil, fmt.Errorf("%w: median needs n >= 2f+1, got n=%d f=%d", ErrRequirement, n, f)
	}
	return &Median{n: n, f: f, s: newArena(n), parallel: true}, nil
}

// NewSequentialMedian returns a median rule that processes all coordinates on
// the calling goroutine. It is used by the parallelization ablation bench.
func NewSequentialMedian(n, f int) (*Median, error) {
	m, err := NewMedian(n, f)
	if err != nil {
		return nil, err
	}
	m.parallel = false
	return m, nil
}

// Name implements Rule.
func (m *Median) Name() string { return NameMedian }

// N implements Rule.
func (m *Median) N() int { return m.n }

// F implements Rule.
func (m *Median) F() int { return m.f }

// Aggregate implements Rule.
func (m *Median) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	return m.AggregateInto(nil, inputs)
}

// AggregateInto implements Rule.
func (m *Median) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(m, inputs)
	if err != nil {
		return nil, err
	}
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	dst = tensor.Resize(dst, d)
	a := m.s
	a.cIn = append(a.cIn[:0], inputs...)
	a.cOut = dst
	perCoord := 2 * m.n
	if !m.parallel {
		perCoord = 0 // below any parallel threshold: stay on this goroutine
	}
	a.runCoordinate(a.medianFn, d, perCoord)
	return dst, nil
}

// medianOfColumn selects the median of col, mutating col. For odd n it is the
// middle order statistic; for even n the average of the two middle ones
// (making the rule symmetric, which the permutation-invariance property test
// relies on).
func medianOfColumn(col []float64) float64 {
	n := len(col)
	switch n {
	case 1:
		return col[0]
	case 2:
		return 0.5 * (col[0] + col[1])
	case 3:
		return median3(col[0], col[1], col[2])
	}
	if n%2 == 1 {
		return quickselect(col, n/2)
	}
	hi := quickselect(col, n/2)
	lo := quickselect(col[:n/2+1], n/2-1) // after partition, lower half holds the smaller order stats
	return 0.5 * (lo + hi)
}
