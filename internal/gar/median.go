package gar

import (
	"fmt"
	"runtime"
	"sync"

	"garfield/internal/tensor"
)

// Median computes the coordinate-wise median of the inputs (Xie et al.'s
// generalized Byzantine-tolerant SGD). It requires n >= 2f+1.
//
// The implementation mirrors the paper's two execution strategies
// (Section 4.3): coordinates are split into contiguous shares processed by
// parallel workers (the CPU strategy: "each of the m cores processes a
// continuous share of n/m coordinates"), and per-coordinate selection uses a
// branch-minimal network for small n — the Go analogue of the paper's SIMT
// selection-instruction trick — falling back to introselect-style
// quickselect for larger n.
type Median struct {
	n, f int

	// parallel controls whether coordinate shares are processed by multiple
	// goroutines. It exists so the ablation benchmark can compare the
	// sequential and parallel designs; production callers leave it true.
	parallel bool
}

var _ Rule = (*Median)(nil)

// NewMedian returns a coordinate-wise median over n inputs tolerating f
// Byzantine ones.
func NewMedian(n, f int) (*Median, error) {
	if f < 0 || n < 2*f+1 {
		return nil, fmt.Errorf("%w: median needs n >= 2f+1, got n=%d f=%d", ErrRequirement, n, f)
	}
	return &Median{n: n, f: f, parallel: true}, nil
}

// NewSequentialMedian returns a median rule that processes all coordinates on
// the calling goroutine. It is used by the parallelization ablation bench.
func NewSequentialMedian(n, f int) (*Median, error) {
	m, err := NewMedian(n, f)
	if err != nil {
		return nil, err
	}
	m.parallel = false
	return m, nil
}

// Name implements Rule.
func (m *Median) Name() string { return NameMedian }

// N implements Rule.
func (m *Median) N() int { return m.n }

// F implements Rule.
func (m *Median) F() int { return m.f }

// Aggregate implements Rule.
func (m *Median) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	d, err := checkInputs(m, inputs)
	if err != nil {
		return nil, err
	}
	out := tensor.New(d)
	workers := 1
	if m.parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > d {
			workers = d
		}
		if workers < 1 {
			workers = 1
		}
	}
	if workers == 1 {
		medianShare(inputs, out, 0, d)
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (d + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > d {
			hi = d
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			medianShare(inputs, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// medianShare fills out[lo:hi] with the coordinate-wise medians of inputs.
func medianShare(inputs []tensor.Vector, out tensor.Vector, lo, hi int) {
	n := len(inputs)
	col := make([]float64, n)
	for c := lo; c < hi; c++ {
		for i, v := range inputs {
			col[i] = v[c]
		}
		out[c] = medianOfColumn(col)
	}
}

// medianOfColumn selects the median of col, mutating col. For odd n it is the
// middle order statistic; for even n the average of the two middle ones
// (making the rule symmetric, which the permutation-invariance property test
// relies on).
func medianOfColumn(col []float64) float64 {
	n := len(col)
	switch n {
	case 1:
		return col[0]
	case 2:
		return 0.5 * (col[0] + col[1])
	case 3:
		return median3(col[0], col[1], col[2])
	}
	if n%2 == 1 {
		return quickselect(col, n/2)
	}
	hi := quickselect(col, n/2)
	lo := quickselect(col[:n/2+1], n/2-1) // after partition, lower half holds the smaller order stats
	return 0.5 * (lo + hi)
}

// median3 selects the middle of three values via a 3-element sorting network
// expressed with min/max only — the Go analogue of the paper's branchless
// selection-instruction reordering primitive (Section 4.3): no data-dependent
// branch is taken, so the same construction maps to SIMT lanes.
func median3(a, b, c float64) float64 {
	lo, hi := minmax(a, b)
	lo2, _ := minmax(hi, c)
	_, med := minmax(lo, lo2)
	return med
}

func minmax(a, b float64) (lo, hi float64) {
	if a < b {
		return a, b
	}
	return b, a
}

// quickselect returns the k-th smallest element of xs (0-indexed), mutating
// xs. It uses median-of-three pivoting with a fallback to a full sort on
// pathological recursion depth (the "intro" part of introselect).
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	depth := 0
	maxDepth := 2 * log2(len(xs))
	for lo < hi {
		if depth > maxDepth {
			insertionSort(xs[lo : hi+1])
			return xs[k]
		}
		depth++
		p := partition(xs, lo, hi)
		switch {
		case k == p:
			return xs[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return xs[k]
}

func partition(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot: order xs[lo], xs[mid], xs[hi].
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi-1] = xs[hi-1], xs[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi-1] = xs[hi-1], xs[i]
	return i
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
