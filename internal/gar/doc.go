// Package gar implements the statistically-robust gradient aggregation rules
// (GARs) at the heart of Garfield (Section 3.1 of the paper): coordinate-wise
// Median, Krum and Multi-Krum, MDA (minimum-diameter averaging) and Bulyan,
// together with the non-resilient Average baseline and the TrimmedMean,
// GeoMedian and Phocas extensions.
//
// A GAR is a function (R^d)^q -> R^d: it takes q input vectors of which at
// most f may be Byzantine, and outputs one vector with statistical guarantees
// that make it safe to apply as an SGD step. Every rule validates the paper's
// resilience precondition relating n and f at construction time:
//
//	Average      f == 0      O(nd)
//	Median       n >= 2f+1   O(nd) best, O(n^2 d) worst
//	TrimmedMean  n >= 2f+1   O(nd log n)
//	Krum         n >= 2f+3   O(n^2 d)
//	Multi-Krum   n >= 2f+3   O(n^2 d)
//	MDA          n >= 2f+1   O(C(n,f) + n^2 d)
//	Bulyan       n >= 4f+3   O(n^2 d)
//	GeoMedian    n >= 2f+1   O(nd) per Weiszfeld iteration
//	Phocas       n >= 2f+1   O(nd log n)
//
// Violating a precondition fails New with ErrRequirement; unknown names fail
// with ErrUnknownRule. The scenario engine surfaces both at spec-validation
// time, so an infeasible (n, f, rule) triple is rejected before any cluster
// is spawned.
//
// # The Rule contract
//
// Rule mirrors the paper's two-call interface: construction plays the role
// of init(name, n, f), Aggregate the role of aggregate(tensors...). The
// contract every implementation satisfies:
//
//   - Aggregate takes exactly N() vectors of equal dimension and returns a
//     freshly-allocated output; it never mutates its inputs.
//   - AggregateInto is Aggregate with caller-owned output storage — the
//     reuse convention introduced with the zero-allocation hot path (PR 1).
//     The result is written into dst when dst's capacity suffices, and into
//     a fresh vector otherwise; the written vector is returned. dst may be
//     nil and must not alias any input. Reusing one dst across calls makes
//     steady-state aggregation allocation-free; Aggregate is implemented as
//     AggregateInto(nil, inputs).
//   - A Rule value owns preallocated scratch state (see scratch.go): calls
//     on one value are serialized internally, so sharing a Rule across
//     goroutines is safe but not parallel. Callers wanting concurrent
//     aggregation construct one Rule per goroutine — core.Aggregator does
//     exactly this, one per protocol loop.
//
// # Performance structure
//
// The O(n^2 d) rules share a blocked Gram-matrix distance kernel
// (d²(i,j) = ‖i‖² + ‖j‖² − 2⟨i,j⟩, AVX2+FMA assembly with a purego
// fallback) and a per-rule scratch arena, making steady-state aggregation
// through AggregateInto allocation-free — the memory-management discipline
// of Section 4.4 of the paper. See PERFORMANCE.md for the measured numbers
// and golden_test.go for the bit-identical equivalence proofs against the
// seed implementations.
package gar
