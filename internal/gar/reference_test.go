package gar

import (
	"math"
	"sort"

	"garfield/internal/tensor"
)

// This file preserves the seed (pre-arena) implementations of the
// distance-based rules verbatim. They are the ground truth the equivalence
// tests in golden_test.go compare the Gram-kernel/scratch-arena fast paths
// against, bit for bit.

// naivePairwiseSquaredDistances is the seed distance matrix: one
// subtract-square-accumulate pass per pair.
func naivePairwiseSquaredDistances(vs []tensor.Vector) ([][]float64, error) {
	n := len(vs)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d2, err := vs[i].SquaredDistance(vs[j])
			if err != nil {
				return nil, err
			}
			m[i][j] = d2
			m[j][i] = d2
		}
	}
	return m, nil
}

// naiveKrumScores is the seed score computation: full sort of each row, then
// the sum of the first n-f-2 entries in ascending order.
func naiveKrumScores(dist [][]float64, f int) []float64 {
	n := len(dist)
	k := n - f - 2
	scores := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, dist[i][j])
			}
		}
		sort.Float64s(row)
		var s float64
		for _, d2 := range row[:k] {
			s += d2
		}
		scores[i] = s
	}
	return scores
}

func naiveArgsortAscending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

func naiveKrum(f int, inputs []tensor.Vector) (tensor.Vector, error) {
	dist, err := naivePairwiseSquaredDistances(inputs)
	if err != nil {
		return nil, err
	}
	scores := naiveKrumScores(dist, f)
	best := 0
	for i, s := range scores {
		if s < scores[best] {
			best = i
		}
	}
	return inputs[best].Clone(), nil
}

func naiveMultiKrum(f, m int, inputs []tensor.Vector) (tensor.Vector, error) {
	dist, err := naivePairwiseSquaredDistances(inputs)
	if err != nil {
		return nil, err
	}
	scores := naiveKrumScores(dist, f)
	sel := naiveArgsortAscending(scores)[:m]
	chosen := make([]tensor.Vector, len(sel))
	for i, idx := range sel {
		chosen[i] = inputs[idx]
	}
	return tensor.Mean(chosen)
}

// forEachCombination calls fn with every k-subset of [0, n) in lexicographic
// order, reusing buf (len k) as scratch.
func forEachCombination(n, k int, buf []int, fn func([]int)) {
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == k {
			fn(buf)
			return
		}
		for i := start; i <= n-(k-idx); i++ {
			buf[idx] = i
			rec(i+1, idx+1)
		}
	}
	rec(0, 0)
}

func naiveSubsetSpread(dist [][]float64, s []int) float64 {
	var sum float64
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			sum += dist[s[i]][s[j]]
		}
	}
	return sum
}

func naiveSubsetDiameter(dist [][]float64, s []int) float64 {
	var maxD float64
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if d := dist[s[i]][s[j]]; d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

func naiveMDA(n, f int, inputs []tensor.Vector) (tensor.Vector, error) {
	if f == 0 {
		return tensor.Mean(inputs)
	}
	dist, err := naivePairwiseSquaredDistances(inputs)
	if err != nil {
		return nil, err
	}
	keep := n - f
	bestDiameter := math.Inf(1)
	bestSpread := math.Inf(1)
	var bestSubset []int
	subset := make([]int, keep)
	forEachCombination(n, keep, subset, func(s []int) {
		diam := naiveSubsetDiameter(dist, s)
		if diam > bestDiameter {
			return
		}
		spread := naiveSubsetSpread(dist, s)
		if diam < bestDiameter || spread < bestSpread {
			bestDiameter = diam
			bestSpread = spread
			bestSubset = append(bestSubset[:0], s...)
		}
	})
	chosen := make([]tensor.Vector, keep)
	for i, idx := range bestSubset {
		chosen[i] = inputs[idx]
	}
	return tensor.Mean(chosen)
}

func naiveMedianOfSorted(col []float64, order []int) float64 {
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return col[order[a]] < col[order[b]] })
	n := len(col)
	if n%2 == 1 {
		return col[order[n/2]]
	}
	return 0.5 * (col[order[n/2-1]] + col[order[n/2]])
}

func naiveBulyanSelectOne(f int, dist [][]float64, alive []int) int {
	q := len(alive)
	kNeighbours := q - f - 2
	if kNeighbours < 1 {
		kNeighbours = 1
	}
	best := -1
	bestScore := math.Inf(1)
	row := make([]float64, 0, q-1)
	for i := 0; i < q; i++ {
		row = row[:0]
		for j := 0; j < q; j++ {
			if j != i {
				row = append(row, dist[alive[i]][alive[j]])
			}
		}
		sort.Float64s(row)
		var s float64
		for _, d2 := range row[:kNeighbours] {
			s += d2
		}
		if s < bestScore {
			bestScore = s
			best = i
		}
	}
	return best
}

func naiveBulyan(n, f int, inputs []tensor.Vector) (tensor.Vector, error) {
	d := len(inputs[0])
	k := n - 2*f
	dist, err := naivePairwiseSquaredDistances(inputs)
	if err != nil {
		return nil, err
	}
	alive := make([]int, n)
	for i := range alive {
		alive[i] = i
	}
	selected := make([]tensor.Vector, 0, k)
	for iter := 0; iter < k; iter++ {
		pick := naiveBulyanSelectOne(f, dist, alive)
		selected = append(selected, inputs[alive[pick]])
		alive = append(alive[:pick], alive[pick+1:]...)
	}
	kPrime := k - 2*f
	out := tensor.New(d)
	col := make([]float64, k)
	order := make([]int, k)
	for c := 0; c < d; c++ {
		for i, v := range selected {
			col[i] = v[c]
		}
		med := naiveMedianOfSorted(col, order)
		sort.Slice(order, func(a, bb int) bool {
			return math.Abs(col[order[a]]-med) < math.Abs(col[order[bb]]-med)
		})
		var s float64
		for _, idx := range order[:kPrime] {
			s += col[idx]
		}
		out[c] = s / float64(kPrime)
	}
	return out, nil
}

// naiveMedian is the sort-based coordinate-wise median (odd: middle order
// statistic, even: mean of the two middle ones) — the reference the
// quickselect-based rule is checked against.
func naiveMedian(inputs []tensor.Vector) tensor.Vector {
	n := len(inputs)
	d := len(inputs[0])
	out := tensor.New(d)
	col := make([]float64, n)
	for c := 0; c < d; c++ {
		for i, v := range inputs {
			col[i] = v[c]
		}
		sort.Float64s(col)
		if n%2 == 1 {
			out[c] = col[n/2]
		} else {
			out[c] = 0.5 * (col[n/2-1] + col[n/2])
		}
	}
	return out
}

func naiveTrimmedMean(n, f int, inputs []tensor.Vector) tensor.Vector {
	d := len(inputs[0])
	out := tensor.New(d)
	col := make([]float64, n)
	keep := float64(n - 2*f)
	for c := 0; c < d; c++ {
		for i, v := range inputs {
			col[i] = v[c]
		}
		sort.Float64s(col)
		var s float64
		for _, x := range col[f : n-f] {
			s += x
		}
		out[c] = s / keep
	}
	return out
}

func naivePhocas(n, f int, inputs []tensor.Vector) tensor.Vector {
	d := len(inputs[0])
	out := tensor.New(d)
	col := make([]float64, n)
	order := make([]int, n)
	keep := n - f
	trimKeep := float64(n - 2*f)
	for c := 0; c < d; c++ {
		for i, v := range inputs {
			col[i] = v[c]
		}
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return col[order[a]] < col[order[b]] })
		var tm float64
		for _, idx := range order[f : n-f] {
			tm += col[idx]
		}
		tm /= trimKeep
		sort.Slice(order, func(a, b int) bool {
			return math.Abs(col[order[a]]-tm) < math.Abs(col[order[b]]-tm)
		})
		var s float64
		for _, idx := range order[:keep] {
			s += col[idx]
		}
		out[c] = s / float64(keep)
	}
	return out
}

// naiveBulyanMedianInner is the seed's median-inner Bulyan: each selection
// round picks the pool element closest in L2 to the pool's coordinate-wise
// median, then runs the same median-closest coordinate phase.
func naiveBulyanMedianInner(n, f int, inputs []tensor.Vector) (tensor.Vector, error) {
	d := len(inputs[0])
	k := n - 2*f
	alive := make([]int, n)
	for i := range alive {
		alive[i] = i
	}
	selected := make([]tensor.Vector, 0, k)
	for iter := 0; iter < k; iter++ {
		pool := make([]tensor.Vector, len(alive))
		for i, idx := range alive {
			pool[i] = inputs[idx]
		}
		center := naiveMedian(pool)
		best := 0
		bestD := math.Inf(1)
		for i, v := range pool {
			d2, err := v.SquaredDistance(center)
			if err != nil {
				return nil, err
			}
			if d2 < bestD {
				bestD = d2
				best = i
			}
		}
		selected = append(selected, inputs[alive[best]])
		alive = append(alive[:best], alive[best+1:]...)
	}
	kPrime := k - 2*f
	out := tensor.New(d)
	col := make([]float64, k)
	order := make([]int, k)
	for c := 0; c < d; c++ {
		for i, v := range selected {
			col[i] = v[c]
		}
		med := naiveMedianOfSorted(col, order)
		sort.Slice(order, func(a, bb int) bool {
			return math.Abs(col[order[a]]-med) < math.Abs(col[order[bb]]-med)
		})
		var s float64
		for _, idx := range order[:kPrime] {
			s += col[idx]
		}
		out[c] = s / float64(kPrime)
	}
	return out, nil
}
