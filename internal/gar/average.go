package gar

import (
	"fmt"

	"garfield/internal/tensor"
)

// Average is the non-resilient baseline rule used by vanilla deployments:
// the coordinate-wise arithmetic mean of all inputs. It tolerates no
// Byzantine input (f = 0); a single adversarial vector can move the output
// arbitrarily far.
type Average struct {
	n int
}

var _ Rule = (*Average)(nil)

// NewAverage returns an averaging rule over n inputs.
func NewAverage(n int) (*Average, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: average needs n >= 1, got n=%d", ErrRequirement, n)
	}
	return &Average{n: n}, nil
}

// Name implements Rule.
func (a *Average) Name() string { return NameAverage }

// N implements Rule.
func (a *Average) N() int { return a.n }

// F implements Rule. Average tolerates no Byzantine inputs.
func (a *Average) F() int { return 0 }

// Aggregate implements Rule.
func (a *Average) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	return a.AggregateInto(nil, inputs)
}

// AggregateInto implements Rule.
func (a *Average) AggregateInto(dst tensor.Vector, inputs []tensor.Vector) (tensor.Vector, error) {
	if _, err := checkInputs(a, inputs); err != nil {
		return nil, err
	}
	return tensor.MeanInto(dst, inputs)
}
