package gar

// Shared order-statistic selection primitives. Every rule that needs an order
// statistic or a smallest-k sum goes through these instead of fully sorting:
// introselect is O(n) expected with a hard O(n log n) fallback, and the
// branch-minimal small cases are the Go analogue of the paper's SIMT
// selection-instruction trick (Section 4.3).

// quickselect returns the k-th smallest element of xs (0-indexed), mutating
// xs. It uses median-of-three pivoting with a fallback to a full sort on
// pathological recursion depth (the "intro" part of introselect). On return,
// xs[:k] holds the k smallest values (in unspecified order) and xs[k+1:] the
// larger ones — the partition invariant sumSmallestK relies on.
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	depth := 0
	maxDepth := 2 * log2(len(xs))
	for lo < hi {
		if depth > maxDepth {
			insertionSort(xs[lo : hi+1])
			return xs[k]
		}
		depth++
		p := partition(xs, lo, hi)
		switch {
		case k == p:
			return xs[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return xs[k]
}

func partition(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot: order xs[lo], xs[mid], xs[hi].
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi-1] = xs[hi-1], xs[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi-1] = xs[hi-1], xs[i]
	return i
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// sumSmallestK returns the sum, taken in ascending value order, of the k
// smallest elements of xs, mutating xs. Introselect partitions the k smallest
// into xs[:k]; the prefix is then insertion-sorted so the summation order —
// and therefore the floating-point result — is bit-identical to sorting the
// whole slice ascending and summing the first k, which is how the naive
// krumScores computed it.
func sumSmallestK(xs []float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(xs) {
		k = len(xs)
	}
	if k < len(xs) {
		quickselect(xs, k-1)
	}
	insertionSort(xs[:k])
	var s float64
	for _, x := range xs[:k] {
		s += x
	}
	return s
}

// argsortStable fills idx with 0..len(keys)-1 sorted ascending by keys,
// breaking ties by index (the permutation a stable sort produces, matching
// the sort.SliceStable-based argsort it replaces). Insertion sort: the rules
// only argsort n-sized score slices, with n small.
func argsortStable(idx []int, keys []float64) {
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && keys[idx[j]] < keys[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// median3 selects the middle of three values via a 3-element sorting network
// expressed with min/max only — no data-dependent branch is taken, so the
// same construction maps to SIMT lanes.
func median3(a, b, c float64) float64 {
	lo, hi := minmax(a, b)
	lo2, _ := minmax(hi, c)
	_, med := minmax(lo, lo2)
	return med
}

func minmax(a, b float64) (lo, hi float64) {
	if a < b {
		return a, b
	}
	return b, a
}
