package gar

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"garfield/internal/tensor"
)

// Tests for the extension rules (GeoMedian, Phocas) that demonstrate the
// paper's "Garfield can straightforwardly include the other [GARs]" claim.

func TestExtensionRulesRegistered(t *testing.T) {
	names := Names()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found[NameGeoMedian] || !found[NamePhocas] {
		t.Fatalf("extension rules missing from registry: %v", names)
	}
	for _, name := range []string{NameGeoMedian, NamePhocas} {
		r, err := New(name, 7, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != name || r.N() != 7 || r.F() != 3 {
			t.Fatalf("%s metadata: %v %v %v", name, r.Name(), r.N(), r.F())
		}
		min, err := MinN(name, 3)
		if err != nil || min != 7 {
			t.Fatalf("MinN(%s) = %d, %v", name, min, err)
		}
	}
}

func TestExtensionRequirements(t *testing.T) {
	if _, err := NewGeoMedian(6, 3); !errors.Is(err, ErrRequirement) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewPhocas(6, 3); !errors.Is(err, ErrRequirement) {
		t.Fatalf("err = %v", err)
	}
}

func TestGeoMedianOnCollinearPoints(t *testing.T) {
	g, err := NewGeoMedian(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Geometric median of {0, 1, 10} in 1D is the 1D median: 1.
	out, err := g.Aggregate(vecs([]float64{0}, []float64{1}, []float64{10}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 0.05 {
		t.Fatalf("geomedian = %v, want ~1", out[0])
	}
}

func TestGeoMedianIdenticalInputs(t *testing.T) {
	g, err := NewGeoMedian(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]tensor.Vector, 5)
	for i := range in {
		in[i] = tensor.Vector{3, -4}
	}
	out, err := g.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-3) > 1e-6 || math.Abs(out[1]+4) > 1e-6 {
		t.Fatalf("geomedian of identical inputs = %v", out)
	}
}

func TestGeoMedianResistsOutliers(t *testing.T) {
	g, err := NewGeoMedian(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := vecs(
		[]float64{1, 1}, []float64{1.1, 0.9}, []float64{0.9, 1.1},
		[]float64{1e9, 1e9}, []float64{-1e9, 1e9},
	)
	out, err := g.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	// The geometric median must stay near the honest cluster: the two
	// far-away points pull with bounded (unit) influence each.
	if out[0] < -2 || out[0] > 4 || out[1] < -2 || out[1] > 4 {
		t.Fatalf("geomedian hijacked: %v", out)
	}
}

func TestPhocasMatchesMeanOnCleanData(t *testing.T) {
	p, err := NewPhocas(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := vecs([]float64{1}, []float64{2}, []float64{3}, []float64{4}, []float64{5})
	out, err := p.Aggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 3) {
		t.Fatalf("phocas f=0 = %v, want 3", out[0])
	}
}

func TestPhocasDiscardsOutliers(t *testing.T) {
	p, err := NewPhocas(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Aggregate(vecs(
		[]float64{1}, []float64{2}, []float64{3}, []float64{2.5}, []float64{1e9},
	))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] < 1 || out[0] > 3 {
		t.Fatalf("phocas = %v, want within honest range", out[0])
	}
}

func TestExtensionPropertyPermutationInvariance(t *testing.T) {
	for _, name := range []string{NameGeoMedian, NamePhocas} {
		name := name
		t.Run(name, func(t *testing.T) {
			r, err := New(name, 7, 2)
			if err != nil {
				t.Fatal(err)
			}
			f := func(seed, permSeed uint64) bool {
				in := genInputs(seed, 7, 5)
				a, err := r.Aggregate(in)
				if err != nil {
					return false
				}
				perm := tensor.NewRNG(permSeed).Perm(7)
				b, err := r.Aggregate(permute(in, perm))
				if err != nil {
					return false
				}
				return vectorsAlmostEqual(a, b, 1e-6)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestExtensionPropertyByzantineBounded(t *testing.T) {
	for _, name := range []string{NameGeoMedian, NamePhocas} {
		name := name
		t.Run(name, func(t *testing.T) {
			r, err := New(name, 9, 3)
			if err != nil {
				t.Fatal(err)
			}
			f := func(seed uint64) bool {
				rng := tensor.NewRNG(seed)
				center := rng.NormalVector(4, 0, 5)
				in := make([]tensor.Vector, 9)
				for i := 0; i < 6; i++ {
					v := center.Clone()
					if err := v.AddInPlace(rng.NormalVector(4, 0, 0.5)); err != nil {
						return false
					}
					in[i] = v
				}
				for i := 6; i < 9; i++ {
					in[i] = rng.NormalVector(4, 1e6, 1e6)
				}
				out, err := r.Aggregate(in)
				if err != nil {
					return false
				}
				dist, err := out.Distance(center)
				if err != nil {
					return false
				}
				return dist < 100
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
