package gar

// dotKernel returns the inner product <a, b> of two equal-length slices,
// dispatching to the FMA-vectorized assembly kernel when the CPU supports it
// and to the unrolled pure-Go kernel otherwise.
//
// The fused multiply-adds of the vector path round differently from the
// scalar path, so absolute distance values differ across CPUs in the last
// ulps; every consumer in this package uses distances only to *select*
// inputs, and the selection comparisons are robust to that (see the
// equivalence tests in golden_test.go). Within one process the kernel choice
// is fixed, so aggregation remains fully deterministic.
func dotKernel(a, b []float64) float64 {
	if useAsmDot {
		return dotAsm(a, b)
	}
	return dotGeneric(a, b)
}

// dotGeneric is the portable kernel. Four independent accumulators break the
// loop-carried dependency of the naive "s += a[i]*b[i]" formulation: scalar
// float64 adds have multi-cycle latency, so a single accumulator bounds the
// loop at one element per add latency while four accumulators keep the FPU
// pipeline full — the CPU analogue of the paper's Section 4.3 kernel tuning.
func dotGeneric(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a = a[4:]
		b = b[4:]
	}
	for i := range a {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}
