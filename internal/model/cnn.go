package model

import (
	"fmt"
	"math"

	"garfield/internal/data"
	"garfield/internal/tensor"
)

// CNN is a small convolutional network — one valid-padding convolution with
// ReLU, one 2x2 max-pool, and a dense softmax output — the architecture
// family of the paper's MNIST_CNN. Gradients are computed with hand-written
// backpropagation, keeping the flat-parameter-vector contract of Model.
//
// Parameter layout (row-major throughout):
//
//	convW  [filters][channels][k][k]
//	convB  [filters]
//	denseW [classes][filters * pooledH * pooledW]
//	denseB [classes]
type CNN struct {
	h, w, c  int // input height, width, channels
	k        int // square kernel size
	filters  int
	classes  int
	convH    int // h - k + 1
	convW_   int // w - k + 1
	pooledH  int
	pooledW  int
	flatSize int
}

var _ Model = (*CNN)(nil)

// NewCNN returns a convolutional classifier over h x w x c inputs with a
// single k x k convolution layer of the given filter count.
func NewCNN(h, w, c, k, filters, classes int) (*CNN, error) {
	if h <= 0 || w <= 0 || c <= 0 || k <= 0 || filters <= 0 || classes < 2 {
		return nil, fmt.Errorf("%w: cnn h=%d w=%d c=%d k=%d filters=%d classes=%d",
			ErrBadInput, h, w, c, k, filters, classes)
	}
	convH, convW := h-k+1, w-k+1
	if convH < 2 || convW < 2 {
		return nil, fmt.Errorf("%w: kernel %d too large for %dx%d input", ErrBadInput, k, h, w)
	}
	m := &CNN{
		h: h, w: w, c: c, k: k, filters: filters, classes: classes,
		convH: convH, convW_: convW,
		pooledH: convH / 2, pooledW: convW / 2,
	}
	m.flatSize = filters * m.pooledH * m.pooledW
	return m, nil
}

// NewMNISTCNN returns the stand-in for the paper's MNIST_CNN profile: a
// 28x28x1 input, 5x5 convolution with 8 filters, 2x2 pooling and a dense
// softmax over 10 classes.
func NewMNISTCNN() (*CNN, error) {
	return NewCNN(28, 28, 1, 5, 8, 10)
}

// Name implements Model.
func (m *CNN) Name() string { return "cnn" }

// Dim implements Model.
func (m *CNN) Dim() int {
	return m.filters*m.c*m.k*m.k + m.filters + m.classes*m.flatSize + m.classes
}

// InputDim returns the expected flattened input length (h*w*c).
func (m *CNN) InputDim() int { return m.h * m.w * m.c }

// InitParams implements Model with He-style scaling for the convolution and
// Xavier for the dense layer.
func (m *CNN) InitParams(rng *tensor.RNG) tensor.Vector {
	p := tensor.New(m.Dim())
	convN := m.filters * m.c * m.k * m.k
	sConv := math.Sqrt(2 / float64(m.c*m.k*m.k))
	for i := 0; i < convN; i++ {
		p[i] = sConv * rng.Norm()
	}
	off := convN + m.filters
	sDense := math.Sqrt(2 / float64(m.flatSize+m.classes))
	for i := 0; i < m.classes*m.flatSize; i++ {
		p[off+i] = sDense * rng.Norm()
	}
	return p
}

// layout returns the four parameter segments of p.
func (m *CNN) layout(p tensor.Vector) (convW, convB, denseW, denseB tensor.Vector) {
	o := 0
	convW = p[o : o+m.filters*m.c*m.k*m.k]
	o += m.filters * m.c * m.k * m.k
	convB = p[o : o+m.filters]
	o += m.filters
	denseW = p[o : o+m.classes*m.flatSize]
	o += m.classes * m.flatSize
	denseB = p[o : o+m.classes]
	return
}

// scratch holds per-example forward activations reused across the batch.
type cnnScratch struct {
	conv   []float64 // post-ReLU feature maps [filters][convH][convW]
	pooled []float64 // pooled activations    [filters][pooledH][pooledW]
	argmax []int     // winning conv index per pooled cell
	probs  []float64 // softmax output
}

func (m *CNN) newScratch() *cnnScratch {
	return &cnnScratch{
		conv:   make([]float64, m.filters*m.convH*m.convW_),
		pooled: make([]float64, m.flatSize),
		argmax: make([]int, m.flatSize),
		probs:  make([]float64, m.classes),
	}
}

// forward fills sc with the activations for x at params.
func (m *CNN) forward(params tensor.Vector, x tensor.Vector, sc *cnnScratch) {
	convW, convB, denseW, denseB := m.layout(params)
	// Convolution + ReLU.
	for f := 0; f < m.filters; f++ {
		for oy := 0; oy < m.convH; oy++ {
			for ox := 0; ox < m.convW_; ox++ {
				s := convB[f]
				for ch := 0; ch < m.c; ch++ {
					wBase := ((f*m.c + ch) * m.k) * m.k
					for ky := 0; ky < m.k; ky++ {
						inRow := ((oy+ky)*m.w + ox) * m.c
						for kx := 0; kx < m.k; kx++ {
							s += convW[wBase+ky*m.k+kx] * x[inRow+kx*m.c+ch]
						}
					}
				}
				if s < 0 {
					s = 0 // ReLU
				}
				sc.conv[(f*m.convH+oy)*m.convW_+ox] = s
			}
		}
	}
	// 2x2 max pool (stride 2).
	for f := 0; f < m.filters; f++ {
		for py := 0; py < m.pooledH; py++ {
			for px := 0; px < m.pooledW; px++ {
				best := math.Inf(-1)
				bestIdx := 0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := (f*m.convH+2*py+dy)*m.convW_ + 2*px + dx
						if v := sc.conv[idx]; v > best {
							best = v
							bestIdx = idx
						}
					}
				}
				pi := (f*m.pooledH+py)*m.pooledW + px
				sc.pooled[pi] = best
				sc.argmax[pi] = bestIdx
			}
		}
	}
	// Dense softmax.
	for cl := 0; cl < m.classes; cl++ {
		s := denseB[cl]
		row := denseW[cl*m.flatSize : (cl+1)*m.flatSize]
		for i, v := range sc.pooled {
			s += row[i] * v
		}
		sc.probs[cl] = s
	}
	softmaxInPlace(sc.probs)
}

// Gradient implements Model.
func (m *CNN) Gradient(params tensor.Vector, batch data.Batch) (tensor.Vector, error) {
	if len(params) != m.Dim() {
		return nil, fmt.Errorf("%w: want %d, got %d", ErrBadParams, m.Dim(), len(params))
	}
	if err := checkBatch(m.InputDim(), batch); err != nil {
		return nil, err
	}
	if len(batch.Features) == 0 {
		return nil, data.ErrEmptyDataset
	}
	grad := tensor.New(m.Dim())
	gConvW, gConvB, gDenseW, gDenseB := m.layout(grad)
	_, _, denseW, _ := m.layout(params)

	sc := m.newScratch()
	dPooled := make([]float64, m.flatSize)
	for bi, x := range batch.Features {
		m.forward(params, x, sc)
		y := batch.Labels[bi]
		// Output layer deltas.
		for cl := 0; cl < m.classes; cl++ {
			delta := sc.probs[cl]
			if cl == y {
				delta -= 1
			}
			row := gDenseW[cl*m.flatSize : (cl+1)*m.flatSize]
			for i, v := range sc.pooled {
				row[i] += delta * v
			}
			gDenseB[cl] += delta
		}
		// Back through the dense layer into the pooled activations.
		for i := range dPooled {
			var s float64
			for cl := 0; cl < m.classes; cl++ {
				delta := sc.probs[cl]
				if cl == y {
					delta -= 1
				}
				s += delta * denseW[cl*m.flatSize+i]
			}
			dPooled[i] = s
		}
		// Unpool to the winning conv cell; ReLU gate; accumulate conv
		// weight gradients by correlating the delta with the input.
		for pi, d := range dPooled {
			convIdx := sc.argmax[pi]
			if sc.conv[convIdx] <= 0 {
				continue // ReLU killed this path (or the winner was 0)
			}
			f := convIdx / (m.convH * m.convW_)
			rem := convIdx % (m.convH * m.convW_)
			oy := rem / m.convW_
			ox := rem % m.convW_
			gConvB[f] += d
			for ch := 0; ch < m.c; ch++ {
				wBase := ((f*m.c + ch) * m.k) * m.k
				for ky := 0; ky < m.k; ky++ {
					inRow := ((oy+ky)*m.w + ox) * m.c
					for kx := 0; kx < m.k; kx++ {
						gConvW[wBase+ky*m.k+kx] += d * x[inRow+kx*m.c+ch]
					}
				}
			}
		}
	}
	grad.ScaleInPlace(1 / float64(len(batch.Features)))
	return grad, nil
}

// Loss implements Model.
func (m *CNN) Loss(params tensor.Vector, batch data.Batch) (float64, error) {
	if len(params) != m.Dim() {
		return 0, fmt.Errorf("%w: want %d, got %d", ErrBadParams, m.Dim(), len(params))
	}
	if err := checkBatch(m.InputDim(), batch); err != nil {
		return 0, err
	}
	if len(batch.Features) == 0 {
		return 0, data.ErrEmptyDataset
	}
	sc := m.newScratch()
	var loss float64
	for i, x := range batch.Features {
		m.forward(params, x, sc)
		loss += -logClamped(sc.probs[batch.Labels[i]])
	}
	return loss / float64(len(batch.Features)), nil
}

// Accuracy implements Model.
func (m *CNN) Accuracy(params tensor.Vector, ds *data.Dataset) (float64, error) {
	if len(params) != m.Dim() {
		return 0, fmt.Errorf("%w: want %d, got %d", ErrBadParams, m.Dim(), len(params))
	}
	if ds.Len() == 0 {
		return 0, data.ErrEmptyDataset
	}
	sc := m.newScratch()
	correct := 0
	for i, x := range ds.Features {
		if len(x) != m.InputDim() {
			return 0, fmt.Errorf("%w: feature %d has %d, want %d", ErrBadInput, i, len(x), m.InputDim())
		}
		m.forward(params, x, sc)
		if argmax(sc.probs) == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}
