package model

import (
	"errors"
	"math"
	"testing"

	"garfield/internal/data"
	"garfield/internal/tensor"
)

func smallDataset(t *testing.T) (*data.Dataset, *data.Dataset) {
	t.Helper()
	train, test, err := data.Generate(data.SyntheticSpec{
		Name: "t", Dim: 10, Classes: 3, Train: 300, Test: 100,
		Separation: 2, Noise: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func fullBatch(d *data.Dataset) data.Batch {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return d.Batch(idx)
}

// numericGradientCheck compares the analytic gradient against central finite
// differences on a few random coordinates.
func numericGradientCheck(t *testing.T, m Model, params tensor.Vector, b data.Batch) {
	t.Helper()
	grad, err := m.Gradient(params, b)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(99)
	const h = 1e-6
	for trial := 0; trial < 12; trial++ {
		i := rng.Intn(len(params))
		orig := params[i]
		params[i] = orig + h
		lp, err := m.Loss(params, b)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = orig - h
		lm, err := m.Loss(params, b)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("gradient check failed at %d: analytic %v, numeric %v", i, grad[i], numeric)
		}
	}
}

func TestLinearSoftmaxDim(t *testing.T) {
	m, err := NewLinearSoftmax(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 33 {
		t.Fatalf("Dim = %d, want 33", m.Dim())
	}
}

func TestLinearGradientCheck(t *testing.T) {
	train, _ := smallDataset(t)
	m, err := NewLinearSoftmax(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(tensor.NewRNG(1))
	b := train.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
	numericGradientCheck(t, m, params, b)
}

func TestMLPGradientCheck(t *testing.T) {
	train, _ := smallDataset(t)
	m, err := NewMLP(10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(tensor.NewRNG(2))
	b := train.Batch([]int{0, 1, 2, 3})
	numericGradientCheck(t, m, params, b)
}

func TestMLPDim(t *testing.T) {
	m, err := NewMLP(10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 8*10 + 8 + 3*8 + 3
	if m.Dim() != want {
		t.Fatalf("Dim = %d, want %d", m.Dim(), want)
	}
	if m.Hidden() != 8 {
		t.Fatalf("Hidden = %d", m.Hidden())
	}
}

func TestLinearLearnsSyntheticTask(t *testing.T) {
	train, test := smallDataset(t)
	m, err := NewLinearSoftmax(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(tensor.NewRNG(3))
	before, err := m.Accuracy(params, test)
	if err != nil {
		t.Fatal(err)
	}
	b := fullBatch(train)
	for step := 0; step < 150; step++ {
		g, err := m.Gradient(params, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := params.AXPY(-0.5, g); err != nil {
			t.Fatal(err)
		}
	}
	after, err := m.Accuracy(params, test)
	if err != nil {
		t.Fatal(err)
	}
	if after < 0.85 {
		t.Fatalf("accuracy after training = %v (before %v), want >= 0.85", after, before)
	}
	if after <= before {
		t.Fatalf("training did not improve accuracy: %v -> %v", before, after)
	}
}

func TestMLPLearnsSyntheticTask(t *testing.T) {
	train, test := smallDataset(t)
	m, err := NewMLP(10, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(tensor.NewRNG(4))
	b := fullBatch(train)
	for step := 0; step < 200; step++ {
		g, err := m.Gradient(params, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := params.AXPY(-0.5, g); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := m.Accuracy(params, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("MLP accuracy = %v, want >= 0.85", acc)
	}
}

func TestLossDecreasesUnderGD(t *testing.T) {
	train, _ := smallDataset(t)
	m, err := NewLinearSoftmax(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(tensor.NewRNG(5))
	b := fullBatch(train)
	l0, err := m.Loss(params, b)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 50; step++ {
		g, err := m.Gradient(params, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := params.AXPY(-0.2, g); err != nil {
			t.Fatal(err)
		}
	}
	l1, err := m.Loss(params, b)
	if err != nil {
		t.Fatal(err)
	}
	if l1 >= l0 {
		t.Fatalf("loss did not decrease: %v -> %v", l0, l1)
	}
}

func TestParamDimValidation(t *testing.T) {
	train, _ := smallDataset(t)
	m, err := NewLinearSoftmax(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.New(m.Dim() + 1)
	b := train.Batch([]int{0})
	if _, err := m.Gradient(bad, b); !errors.Is(err, ErrBadParams) {
		t.Fatalf("Gradient err = %v", err)
	}
	if _, err := m.Loss(bad, b); !errors.Is(err, ErrBadParams) {
		t.Fatalf("Loss err = %v", err)
	}
	if _, err := m.Accuracy(bad, train); !errors.Is(err, ErrBadParams) {
		t.Fatalf("Accuracy err = %v", err)
	}
	mm, err := NewMLP(10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	badM := tensor.New(mm.Dim() - 1)
	if _, err := mm.Gradient(badM, b); !errors.Is(err, ErrBadParams) {
		t.Fatalf("MLP Gradient err = %v", err)
	}
}

func TestInputDimValidation(t *testing.T) {
	m, err := NewLinearSoftmax(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(tensor.NewRNG(1))
	badBatch := data.Batch{Features: []tensor.Vector{tensor.New(7)}, Labels: []int{0}}
	if _, err := m.Gradient(params, badBatch); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
}

func TestEmptyBatch(t *testing.T) {
	m, err := NewLinearSoftmax(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(tensor.NewRNG(1))
	if _, err := m.Gradient(params, data.Batch{}); !errors.Is(err, data.ErrEmptyDataset) {
		t.Fatalf("err = %v, want ErrEmptyDataset", err)
	}
	if _, err := m.Accuracy(params, &data.Dataset{}); !errors.Is(err, data.ErrEmptyDataset) {
		t.Fatalf("err = %v, want ErrEmptyDataset", err)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewLinearSoftmax(0, 3); err == nil {
		t.Fatal("expected error for in=0")
	}
	if _, err := NewLinearSoftmax(5, 1); err == nil {
		t.Fatal("expected error for classes=1")
	}
	if _, err := NewMLP(5, 0, 3); err == nil {
		t.Fatal("expected error for hidden=0")
	}
}

func TestSoftmaxStability(t *testing.T) {
	logits := []float64{1000, 1001, 999}
	softmaxInPlace(logits)
	var sum float64
	for _, p := range logits {
		if math.IsNaN(p) || p < 0 {
			t.Fatalf("softmax produced invalid probability: %v", logits)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sum = %v", sum)
	}
}

func TestTable1Profiles(t *testing.T) {
	profiles := Table1()
	if len(profiles) != 6 {
		t.Fatalf("Table1 has %d entries, want 6", len(profiles))
	}
	wantParams := map[string]int{
		"MNIST_CNN":  79510,
		"CifarNet":   1756426,
		"Inception":  5602874,
		"ResNet-50":  23539850,
		"ResNet-200": 62697610,
		"VGG":        128807306,
	}
	wantMB := map[string]float64{
		"MNIST_CNN":  0.3,
		"CifarNet":   6.7,
		"Inception":  21.4, // paper's value is derived from 22.4 MB raw /1e6; allow rounding below
		"ResNet-50":  89.8,
		"ResNet-200": 239.2,
		"VGG":        491.4,
	}
	for _, p := range profiles {
		if p.Params != wantParams[p.Name] {
			t.Fatalf("%s params = %d, want %d", p.Name, p.Params, wantParams[p.Name])
		}
		// Sizes in the paper are params * 4 bytes; check within 10%.
		if math.Abs(p.SizeMB()-wantMB[p.Name])/wantMB[p.Name] > 0.10 {
			t.Fatalf("%s size = %.1f MB, paper says %.1f", p.Name, p.SizeMB(), wantMB[p.Name])
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("resnet-50")
	if err != nil {
		t.Fatal(err)
	}
	if p.Params != 23539850 {
		t.Fatalf("params = %d", p.Params)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestInitParamsDeterministic(t *testing.T) {
	m, err := NewMLP(6, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := m.InitParams(tensor.NewRNG(8))
	b := m.InitParams(tensor.NewRNG(8))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("InitParams not deterministic")
		}
	}
}
