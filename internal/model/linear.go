package model

import (
	"fmt"

	"garfield/internal/data"
	"garfield/internal/tensor"
)

// LinearSoftmax is multinomial logistic regression: logits = W x + b with
// cross-entropy loss. Parameter layout: W row-major (classes x in) followed
// by b (classes).
type LinearSoftmax struct {
	in, classes int
}

var _ Model = (*LinearSoftmax)(nil)

// NewLinearSoftmax returns a linear softmax classifier for the given input
// dimension and class count.
func NewLinearSoftmax(in, classes int) (*LinearSoftmax, error) {
	if in <= 0 || classes < 2 {
		return nil, fmt.Errorf("%w: in=%d classes=%d", ErrBadInput, in, classes)
	}
	return &LinearSoftmax{in: in, classes: classes}, nil
}

// Name implements Model.
func (m *LinearSoftmax) Name() string { return "linear-softmax" }

// Dim implements Model.
func (m *LinearSoftmax) Dim() int { return m.classes*m.in + m.classes }

// InitParams implements Model. Weights start at small Gaussian values and
// biases at zero.
func (m *LinearSoftmax) InitParams(rng *tensor.RNG) tensor.Vector {
	p := rng.NormalVector(m.Dim(), 0, 0.01)
	for i := m.classes * m.in; i < len(p); i++ {
		p[i] = 0
	}
	return p
}

// logits computes W x + b into out (len classes).
func (m *LinearSoftmax) logits(params tensor.Vector, x tensor.Vector, out []float64) {
	for c := 0; c < m.classes; c++ {
		row := params[c*m.in : (c+1)*m.in]
		var s float64
		for j, xv := range x {
			s += row[j] * xv
		}
		out[c] = s + params[m.classes*m.in+c]
	}
}

// Gradient implements Model.
func (m *LinearSoftmax) Gradient(params tensor.Vector, batch data.Batch) (tensor.Vector, error) {
	if len(params) != m.Dim() {
		return nil, fmt.Errorf("%w: want %d, got %d", ErrBadParams, m.Dim(), len(params))
	}
	if err := checkBatch(m.in, batch); err != nil {
		return nil, err
	}
	if len(batch.Features) == 0 {
		return nil, data.ErrEmptyDataset
	}
	grad := tensor.New(m.Dim())
	probs := make([]float64, m.classes)
	for i, x := range batch.Features {
		m.logits(params, x, probs)
		softmaxInPlace(probs)
		y := batch.Labels[i]
		for c := 0; c < m.classes; c++ {
			delta := probs[c]
			if c == y {
				delta -= 1
			}
			row := grad[c*m.in : (c+1)*m.in]
			for j, xv := range x {
				row[j] += delta * xv
			}
			grad[m.classes*m.in+c] += delta
		}
	}
	grad.ScaleInPlace(1 / float64(len(batch.Features)))
	return grad, nil
}

// Loss implements Model.
func (m *LinearSoftmax) Loss(params tensor.Vector, batch data.Batch) (float64, error) {
	if len(params) != m.Dim() {
		return 0, fmt.Errorf("%w: want %d, got %d", ErrBadParams, m.Dim(), len(params))
	}
	if err := checkBatch(m.in, batch); err != nil {
		return 0, err
	}
	if len(batch.Features) == 0 {
		return 0, data.ErrEmptyDataset
	}
	probs := make([]float64, m.classes)
	var loss float64
	for i, x := range batch.Features {
		m.logits(params, x, probs)
		softmaxInPlace(probs)
		loss += -logClamped(probs[batch.Labels[i]])
	}
	return loss / float64(len(batch.Features)), nil
}

// Accuracy implements Model.
func (m *LinearSoftmax) Accuracy(params tensor.Vector, ds *data.Dataset) (float64, error) {
	if len(params) != m.Dim() {
		return 0, fmt.Errorf("%w: want %d, got %d", ErrBadParams, m.Dim(), len(params))
	}
	if ds.Len() == 0 {
		return 0, data.ErrEmptyDataset
	}
	probs := make([]float64, m.classes)
	correct := 0
	for i, x := range ds.Features {
		if len(x) != m.in {
			return 0, fmt.Errorf("%w: feature %d has %d, want %d", ErrBadInput, i, len(x), m.in)
		}
		m.logits(params, x, probs)
		if argmax(probs) == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}
