// Package model provides the trainable models Garfield experiments use and
// the paper's Table-1 catalogue of model profiles.
//
// The paper delegates model definition to TensorFlow/PyTorch; here a Model is
// any analytically-differentiated function over a single flat parameter
// vector. That flat-vector contract is precisely the abstraction level
// Garfield's aggregation and networking layers operate at, so swapping the
// autograd engine for closed-form gradients preserves every code path the
// paper exercises. Convergence experiments use the trainable models; the
// throughput experiments, which depend only on the parameter dimension d,
// use the Table-1 profiles as opaque vectors.
package model

import (
	"errors"
	"fmt"
	"math"

	"garfield/internal/data"
	"garfield/internal/tensor"
)

// Model is a differentiable classifier over a flat parameter vector. Models
// are stateless: parameters are owned by the caller (the Server object in
// Garfield's design) and passed to every method, so server replicas can hold
// divergent copies of the same architecture.
type Model interface {
	// Name identifies the architecture.
	Name() string
	// Dim returns the length of the flat parameter vector.
	Dim() int
	// InitParams returns a fresh, deterministically-initialized parameter
	// vector.
	InitParams(rng *tensor.RNG) tensor.Vector
	// Gradient computes the average cross-entropy gradient of the batch at
	// params.
	Gradient(params tensor.Vector, batch data.Batch) (tensor.Vector, error)
	// Loss computes the average cross-entropy loss of the batch at params.
	Loss(params tensor.Vector, batch data.Batch) (float64, error)
	// Accuracy computes top-1 accuracy over the dataset at params — the
	// paper's accuracy metric.
	Accuracy(params tensor.Vector, ds *data.Dataset) (float64, error)
}

var (
	// ErrBadParams is returned when a parameter vector has the wrong
	// dimension for the model.
	ErrBadParams = errors.New("model: parameter dimension mismatch")

	// ErrBadInput is returned when a batch or dataset does not match the
	// model's input shape.
	ErrBadInput = errors.New("model: input dimension mismatch")
)

// softmaxInPlace converts logits to probabilities, numerically stabilized.
func softmaxInPlace(logits []float64) {
	maxL := math.Inf(-1)
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	var sum float64
	for i, l := range logits {
		e := math.Exp(l - maxL)
		logits[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range logits {
		logits[i] *= inv
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func checkBatch(in int, b data.Batch) error {
	for _, f := range b.Features {
		if len(f) != in {
			return fmt.Errorf("%w: model expects %d features, got %d", ErrBadInput, in, len(f))
		}
	}
	return nil
}
