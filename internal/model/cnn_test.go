package model

import (
	"errors"
	"math"
	"testing"

	"garfield/internal/data"
	"garfield/internal/tensor"
)

// cnnTask builds a small image-shaped learnable task: 8x8x1 inputs.
func cnnTask(t *testing.T) (*data.Dataset, *data.Dataset) {
	t.Helper()
	train, test, err := data.Generate(data.SyntheticSpec{
		Name: "cnn-test", Dim: 64, Classes: 3, Train: 300, Test: 100,
		Separation: 1.5, Noise: 0.5, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestCNNDims(t *testing.T) {
	m, err := NewCNN(8, 8, 1, 3, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// conv: 4*1*3*3 + 4 = 40; conv out 6x6 -> pooled 3x3 -> flat 36;
	// dense: 3*4*36... wait flat = filters * 3 * 3 = 36; dense 3*36+3 = 111.
	want := 40 + 3*36 + 3
	if m.Dim() != want {
		t.Fatalf("Dim = %d, want %d", m.Dim(), want)
	}
	if m.InputDim() != 64 {
		t.Fatalf("InputDim = %d", m.InputDim())
	}
}

func TestCNNConstructorValidation(t *testing.T) {
	if _, err := NewCNN(0, 8, 1, 3, 4, 3); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewCNN(8, 8, 1, 8, 4, 3); !errors.Is(err, ErrBadInput) {
		t.Fatalf("kernel-too-large err = %v", err)
	}
	if _, err := NewCNN(8, 8, 1, 3, 4, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("classes err = %v", err)
	}
}

func TestMNISTCNNShape(t *testing.T) {
	m, err := NewMNISTCNN()
	if err != nil {
		t.Fatal(err)
	}
	if m.InputDim() != 784 {
		t.Fatalf("InputDim = %d", m.InputDim())
	}
	// 28-5+1 = 24 conv, pooled 12x12, 8 filters -> flat 1152;
	// conv params 8*25+8 = 208; dense 10*1152+10 = 11530.
	if m.Dim() != 208+11530 {
		t.Fatalf("Dim = %d", m.Dim())
	}
}

// TestCNNGradientCheck validates the hand-written backprop against central
// finite differences — the critical correctness test for the conv layer.
func TestCNNGradientCheck(t *testing.T) {
	train, _ := cnnTask(t)
	m, err := NewCNN(8, 8, 1, 3, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(tensor.NewRNG(5))
	b := train.Batch([]int{0, 1, 2})
	grad, err := m.Gradient(params, b)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(13)
	const h = 1e-6
	checked := 0
	for trial := 0; trial < 60 && checked < 15; trial++ {
		i := rng.Intn(len(params))
		orig := params[i]
		params[i] = orig + h
		lp, err := m.Loss(params, b)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = orig - h
		lm, err := m.Loss(params, b)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = orig
		numeric := (lp - lm) / (2 * h)
		// Max-pool argmax switches and ReLU kinks make the loss only
		// piecewise smooth: skip coordinates where the two-sided
		// estimates disagree wildly with a one-sided probe (kink).
		if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("gradient check failed at %d: analytic %v, numeric %v", i, grad[i], numeric)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d coordinates checked", checked)
	}
}

func TestCNNLearnsTask(t *testing.T) {
	train, test := cnnTask(t)
	m, err := NewCNN(8, 8, 1, 3, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(tensor.NewRNG(3))
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i
	}
	b := train.Batch(idx)
	l0, err := m.Loss(params, b)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 120; step++ {
		g, err := m.Gradient(params, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := params.AXPY(-0.3, g); err != nil {
			t.Fatal(err)
		}
	}
	l1, err := m.Loss(params, b)
	if err != nil {
		t.Fatal(err)
	}
	if l1 >= l0 {
		t.Fatalf("loss did not decrease: %v -> %v", l0, l1)
	}
	acc, err := m.Accuracy(params, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Fatalf("CNN accuracy = %v, want >= 0.7", acc)
	}
}

func TestCNNValidation(t *testing.T) {
	train, _ := cnnTask(t)
	m, err := NewCNN(8, 8, 1, 3, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.New(m.Dim() + 1)
	b := train.Batch([]int{0})
	if _, err := m.Gradient(bad, b); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Loss(bad, b); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Accuracy(bad, train); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
	params := m.InitParams(tensor.NewRNG(1))
	wrongInput := data.Batch{Features: []tensor.Vector{tensor.New(10)}, Labels: []int{0}}
	if _, err := m.Gradient(params, wrongInput); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Gradient(params, data.Batch{}); !errors.Is(err, data.ErrEmptyDataset) {
		t.Fatalf("err = %v", err)
	}
}

// TestCNNInGarfieldCluster trains a CNN end to end through the SSMW
// protocol, proving the Model contract composes with the whole stack.
func TestCNNMultiChannel(t *testing.T) {
	// 4x4x2 input exercises the channel indexing.
	train, _, err := data.Generate(data.SyntheticSpec{
		Name: "mc", Dim: 32, Classes: 2, Train: 100, Test: 20,
		Separation: 2, Noise: 0.3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCNN(4, 4, 2, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(tensor.NewRNG(2))
	b := train.Batch([]int{0, 1, 2, 3})
	grad, err := m.Gradient(params, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(grad) != m.Dim() {
		t.Fatalf("grad dim = %d", len(grad))
	}
	// Finite-difference spot check on a conv weight and a dense weight.
	rng := tensor.NewRNG(4)
	const h = 1e-6
	for trial := 0; trial < 8; trial++ {
		i := rng.Intn(len(params))
		orig := params[i]
		params[i] = orig + h
		lp, _ := m.Loss(params, b)
		params[i] = orig - h
		lm, _ := m.Loss(params, b)
		params[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("multichannel gradient check failed at %d: %v vs %v", i, grad[i], numeric)
		}
	}
}
