package model

import (
	"fmt"
	"strings"
)

// Profile describes one of the architectures from Table 1 of the paper by
// its parameter count alone. The throughput and micro-benchmark experiments
// depend only on the gradient dimension d (vectors are moved and aggregated,
// never evaluated), so a profile is exactly the information those experiments
// need; the convergence experiments use real trainable models instead.
type Profile struct {
	// Name is the architecture name as printed in Table 1.
	Name string
	// Params is the number of trainable parameters (the gradient
	// dimension d).
	Params int
}

// SizeMB returns the model size as reported in Table 1: float32 parameters
// (4 bytes each) in binary megabytes (MiB), which is the unit that
// reproduces the paper's column exactly (e.g. VGG: 128807306*4/2^20 = 491.4).
func (p Profile) SizeMB() float64 { return float64(p.Params) * 4 / (1 << 20) }

// Table1 returns the paper's model catalogue with its exact parameter
// counts.
func Table1() []Profile {
	return []Profile{
		{Name: "MNIST_CNN", Params: 79510},
		{Name: "CifarNet", Params: 1756426},
		{Name: "Inception", Params: 5602874},
		{Name: "ResNet-50", Params: 23539850},
		{Name: "ResNet-200", Params: 62697610},
		{Name: "VGG", Params: 128807306},
	}
}

// ProfileByName looks a profile up case-insensitively.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Table1() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("model: unknown profile %q", name)
}
