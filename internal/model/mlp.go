package model

import (
	"fmt"
	"math"

	"garfield/internal/data"
	"garfield/internal/tensor"
)

// MLP is a one-hidden-layer perceptron with tanh activation and softmax
// cross-entropy output: the non-convex model used where the paper trains
// deep networks. Parameter layout: W1 (hidden x in) row-major, b1 (hidden),
// W2 (classes x hidden) row-major, b2 (classes).
type MLP struct {
	in, hidden, classes int
}

var _ Model = (*MLP)(nil)

// NewMLP returns an MLP classifier with the given layer sizes.
func NewMLP(in, hidden, classes int) (*MLP, error) {
	if in <= 0 || hidden <= 0 || classes < 2 {
		return nil, fmt.Errorf("%w: in=%d hidden=%d classes=%d", ErrBadInput, in, hidden, classes)
	}
	return &MLP{in: in, hidden: hidden, classes: classes}, nil
}

// Name implements Model.
func (m *MLP) Name() string { return "mlp" }

// Dim implements Model.
func (m *MLP) Dim() int {
	return m.hidden*m.in + m.hidden + m.classes*m.hidden + m.classes
}

// Hidden returns the hidden layer width.
func (m *MLP) Hidden() int { return m.hidden }

// InitParams implements Model with Xavier-style scaling.
func (m *MLP) InitParams(rng *tensor.RNG) tensor.Vector {
	p := tensor.New(m.Dim())
	s1 := math.Sqrt(2 / float64(m.in+m.hidden))
	s2 := math.Sqrt(2 / float64(m.hidden+m.classes))
	off := 0
	for i := 0; i < m.hidden*m.in; i++ {
		p[off+i] = s1 * rng.Norm()
	}
	off += m.hidden*m.in + m.hidden // biases stay zero
	for i := 0; i < m.classes*m.hidden; i++ {
		p[off+i] = s2 * rng.Norm()
	}
	return p
}

// layout returns the four parameter segments of p.
func (m *MLP) layout(p tensor.Vector) (w1, b1, w2, b2 tensor.Vector) {
	o := 0
	w1 = p[o : o+m.hidden*m.in]
	o += m.hidden * m.in
	b1 = p[o : o+m.hidden]
	o += m.hidden
	w2 = p[o : o+m.classes*m.hidden]
	o += m.classes * m.hidden
	b2 = p[o : o+m.classes]
	return
}

// forward computes hidden activations (tanh) and output probabilities.
func (m *MLP) forward(p tensor.Vector, x tensor.Vector, h, probs []float64) {
	w1, b1, w2, b2 := m.layout(p)
	for i := 0; i < m.hidden; i++ {
		row := w1[i*m.in : (i+1)*m.in]
		s := b1[i]
		for j, xv := range x {
			s += row[j] * xv
		}
		h[i] = math.Tanh(s)
	}
	for c := 0; c < m.classes; c++ {
		row := w2[c*m.hidden : (c+1)*m.hidden]
		s := b2[c]
		for i, hv := range h {
			s += row[i] * hv
		}
		probs[c] = s
	}
	softmaxInPlace(probs)
}

// Gradient implements Model (closed-form backprop through the single hidden
// layer).
func (m *MLP) Gradient(params tensor.Vector, batch data.Batch) (tensor.Vector, error) {
	if len(params) != m.Dim() {
		return nil, fmt.Errorf("%w: want %d, got %d", ErrBadParams, m.Dim(), len(params))
	}
	if err := checkBatch(m.in, batch); err != nil {
		return nil, err
	}
	if len(batch.Features) == 0 {
		return nil, data.ErrEmptyDataset
	}
	grad := tensor.New(m.Dim())
	gw1, gb1, gw2, gb2 := m.layout(grad)
	_, _, w2, _ := m.layout(params)

	h := make([]float64, m.hidden)
	probs := make([]float64, m.classes)
	dh := make([]float64, m.hidden)
	for i, x := range batch.Features {
		m.forward(params, x, h, probs)
		y := batch.Labels[i]
		// Output layer: dL/dlogit_c = p_c - [c == y].
		for c := 0; c < m.classes; c++ {
			delta := probs[c]
			if c == y {
				delta -= 1
			}
			row := gw2[c*m.hidden : (c+1)*m.hidden]
			for j, hv := range h {
				row[j] += delta * hv
			}
			gb2[c] += delta
		}
		// Hidden layer: dh_j = sum_c delta_c * w2[c][j], through tanh'.
		for j := range dh {
			var s float64
			for c := 0; c < m.classes; c++ {
				delta := probs[c]
				if c == y {
					delta -= 1
				}
				s += delta * w2[c*m.hidden+j]
			}
			dh[j] = s * (1 - h[j]*h[j])
		}
		for j := 0; j < m.hidden; j++ {
			row := gw1[j*m.in : (j+1)*m.in]
			for k, xv := range x {
				row[k] += dh[j] * xv
			}
			gb1[j] += dh[j]
		}
	}
	grad.ScaleInPlace(1 / float64(len(batch.Features)))
	return grad, nil
}

// Loss implements Model.
func (m *MLP) Loss(params tensor.Vector, batch data.Batch) (float64, error) {
	if len(params) != m.Dim() {
		return 0, fmt.Errorf("%w: want %d, got %d", ErrBadParams, m.Dim(), len(params))
	}
	if err := checkBatch(m.in, batch); err != nil {
		return 0, err
	}
	if len(batch.Features) == 0 {
		return 0, data.ErrEmptyDataset
	}
	h := make([]float64, m.hidden)
	probs := make([]float64, m.classes)
	var loss float64
	for i, x := range batch.Features {
		m.forward(params, x, h, probs)
		loss += -logClamped(probs[batch.Labels[i]])
	}
	return loss / float64(len(batch.Features)), nil
}

// Accuracy implements Model.
func (m *MLP) Accuracy(params tensor.Vector, ds *data.Dataset) (float64, error) {
	if len(params) != m.Dim() {
		return 0, fmt.Errorf("%w: want %d, got %d", ErrBadParams, m.Dim(), len(params))
	}
	if ds.Len() == 0 {
		return 0, data.ErrEmptyDataset
	}
	h := make([]float64, m.hidden)
	probs := make([]float64, m.classes)
	correct := 0
	for i, x := range ds.Features {
		if len(x) != m.in {
			return 0, fmt.Errorf("%w: feature %d has %d, want %d", ErrBadInput, i, len(x), m.in)
		}
		m.forward(params, x, h, probs)
		if argmax(probs) == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// logClamped returns log(p) with p clamped away from zero so Byzantine-driven
// divergence produces large-but-finite losses instead of -Inf.
func logClamped(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		p = eps
	}
	return math.Log(p)
}
