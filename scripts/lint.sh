#!/usr/bin/env bash
# lint.sh — build and run garfield-lint, the repo's invariant analyzer suite
# (wallclock, seededrand, bufdiscipline, detorder; see internal/analysis).
#
# Usage:
#   scripts/lint.sh                 # lint the whole module
#   scripts/lint.sh ./internal/...  # lint a subtree
#   ONLY=wallclock scripts/lint.sh  # run a subset of analyzers
#
# Exit status is garfield-lint's: 0 clean, 1 tool failure, 2 diagnostics.
# Suppress a finding only with a justified escape hatch on the offending
# line (or the line above):
#   //lint:allow <analyzer>(<reason — mandatory>)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bin
go build -o bin/garfield-lint ./cmd/garfield-lint

ARGS=()
if [ -n "${ONLY:-}" ]; then
  ARGS+=("-only" "$ONLY")
fi
exec ./bin/garfield-lint "${ARGS[@]}" "${@:-./...}"
