#!/usr/bin/env bash
# bench.sh — run the hot-path micro-benchmarks and emit a JSON snapshot
# (BENCH_<N>.json) so the performance trajectory of the aggregation, codec
# and RPC layers is tracked across PRs.
#
# Usage:
#   scripts/bench.sh              # writes the next unused BENCH_<N>.json
#   scripts/bench.sh out.json     # explicit output path (may overwrite)
#   BENCHTIME=100x scripts/bench.sh       # override iteration count
#
# Without an argument the script picks the first BENCH_<N>.json that does
# not exist yet — snapshots are an append-only series, one per PR, and a
# default that silently clobbered the newest one destroyed the history it
# exists to record. Overwriting therefore requires naming the file
# explicitly.
#
# For statistically-sound comparisons between two checkouts, run the
# benchmarks several times per side and feed them to benchstat:
#   go test -run '^$' -bench . -benchmem -count 10 . > old.txt  # on main
#   go test -run '^$' -bench . -benchmem -count 10 . > new.txt  # on branch
#   benchstat old.txt new.txt
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
  OUT="$1"
else
  n=1
  while [ -e "BENCH_${n}.json" ]; do
    n=$((n + 1))
  done
  OUT="BENCH_${n}.json"
fi
BENCHTIME="${BENCHTIME:-20x}"
BENCHES='BenchmarkGARKrum$|BenchmarkGARMultiKrum$|BenchmarkGARMDA$|BenchmarkGARBulyan$|BenchmarkGARMedian$|BenchmarkVectorCodec$|BenchmarkRPCPullFirstQ$|BenchmarkLiveSSMWIteration$|BenchmarkCompressFP64$|BenchmarkCompressFP16$|BenchmarkCompressInt8$|BenchmarkCompressTopK$|BenchmarkCompressedPull$|BenchmarkShardedAggregation$'

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCHES" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i+1) == "ns/op")     ns = $i
		if ($(i+1) == "B/op")      bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (ns != "") {
		names[n] = name; nss[n] = ns; bs[n] = bytes; as[n] = allocs; n++
	}
}
END {
	printf "{\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			names[i], nss[i], bs[i] == "" ? "null" : bs[i], as[i] == "" ? "null" : as[i], i < n-1 ? "," : ""
	}
	printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
